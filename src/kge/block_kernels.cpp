// Blocked training kernels for the four built-in KGE models.
//
// This translation unit is compiled with -fno-math-errno (value-safe: IEEE
// results are unchanged, only the errno side effect of libm calls is
// dropped), which is what lets GCC vectorize loops containing std::sqrt.
// The scalar reference path in *_model.cpp keeps the default flags so the
// kernel benchmark compares against genuinely pre-overhaul codegen.
//
// Determinism contract (DESIGN.md "Blocked training kernels"):
//
//  * Scoring: one independent double accumulation chain per triple, each
//    chain's per-element expression copied verbatim from score(). The
//    4-wide forms interleave four chains for instruction-level
//    parallelism; interleaving independent chains does not reassociate
//    any of them, so every score is bit-identical to the scalar path.
//
//  * Gradients: work items are processed strictly in order. For h != t
//    the three gradient rows are distinct memory, so each element is
//    accumulated exactly once per item and the __restrict kernels below
//    are free to vectorize; the arithmetic per element is copied verbatim
//    from accumulate_gradients. For h == t (gh aliases gt) the scalar
//    statement interleaving is load-bearing, so those items fall back to
//    the virtual scalar path.
//
//  * RotatE: cos/sin of the relation phases are computed once per unique
//    relation per block (same input -> same libm value, so caching is
//    byte-safe) instead of once per triple.

#include <cmath>
#include <unordered_map>
#include <vector>

#include "kge/complex_model.hpp"
#include "kge/kernel_dispatch.hpp"
#include "kge/distmult_model.hpp"
#include "kge/rotate_model.hpp"
#include "kge/transe_model.hpp"
#include "util/span_math.hpp"

namespace dynkge::kge {
namespace {

// ---- ComplEx ---------------------------------------------------------

DYNKGE_KERNEL_CLONES
void complex_score4(const float* const eh[4], const float* const er[4],
                    const float* const et[4], std::int32_t k,
                    double out[4]) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::int32_t i = 0; i < k; ++i) {
    {
      const double h_re = eh[0][i], h_im = eh[0][k + i];
      const double r_re = er[0][i], r_im = er[0][k + i];
      const double t_re = et[0][i], t_im = et[0][k + i];
      acc0 += h_re * r_re * t_re + h_im * r_re * t_im + h_re * r_im * t_im -
              h_im * r_im * t_re;
    }
    {
      const double h_re = eh[1][i], h_im = eh[1][k + i];
      const double r_re = er[1][i], r_im = er[1][k + i];
      const double t_re = et[1][i], t_im = et[1][k + i];
      acc1 += h_re * r_re * t_re + h_im * r_re * t_im + h_re * r_im * t_im -
              h_im * r_im * t_re;
    }
    {
      const double h_re = eh[2][i], h_im = eh[2][k + i];
      const double r_re = er[2][i], r_im = er[2][k + i];
      const double t_re = et[2][i], t_im = et[2][k + i];
      acc2 += h_re * r_re * t_re + h_im * r_re * t_im + h_re * r_im * t_im -
              h_im * r_im * t_re;
    }
    {
      const double h_re = eh[3][i], h_im = eh[3][k + i];
      const double r_re = er[3][i], r_im = er[3][k + i];
      const double t_re = et[3][i], t_im = et[3][k + i];
      acc3 += h_re * r_re * t_re + h_im * r_re * t_im + h_re * r_im * t_im -
              h_im * r_im * t_re;
    }
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

DYNKGE_KERNEL_CLONES
void complex_grad(const float* __restrict eh, const float* __restrict er,
                  const float* __restrict et, float* __restrict gh,
                  float* __restrict gr, float* __restrict gt, float c,
                  std::int32_t k) {
  for (std::int32_t i = 0; i < k; ++i) {
    const float h_re = eh[i], h_im = eh[k + i];
    const float r_re = er[i], r_im = er[k + i];
    const float t_re = et[i], t_im = et[k + i];
    gh[i] += c * (r_re * t_re + r_im * t_im);
    gh[k + i] += c * (r_re * t_im - r_im * t_re);
    gr[i] += c * (h_re * t_re + h_im * t_im);
    gr[k + i] += c * (h_re * t_im - h_im * t_re);
    gt[i] += c * (h_re * r_re - h_im * r_im);
    gt[k + i] += c * (h_im * r_re + h_re * r_im);
  }
}

// ---- TransE ----------------------------------------------------------

/// util::l1_translation4 compiled under the kernel dispatch (inlining into
/// a cloned body specializes the header inline per ISA).
DYNKGE_KERNEL_CLONES
void transe_l1_4(const float* const eh[4], const float* const er[4],
                 const float* const et[4], std::int32_t k, double out[4]) {
  util::l1_translation4(eh, er, et, k, out);
}

DYNKGE_KERNEL_CLONES
void transe_grad(const float* __restrict eh, const float* __restrict er,
                 const float* __restrict et, float* __restrict gh,
                 float* __restrict gr, float* __restrict gt, float coeff,
                 std::int32_t k) {
  for (std::int32_t i = 0; i < k; ++i) {
    const float d = eh[i] + er[i] - et[i];
    const float s = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    gh[i] += coeff * -s;
    gr[i] += coeff * -s;
    gt[i] += coeff * s;
  }
}

// ---- DistMult --------------------------------------------------------

/// util::trilinear_dot4 compiled under the kernel dispatch.
DYNKGE_KERNEL_CLONES
void distmult_score4(const float* const eh[4], const float* const er[4],
                     const float* const et[4], std::int32_t k,
                     double out[4]) {
  util::trilinear_dot4(eh, er, et, k, out);
}

DYNKGE_KERNEL_CLONES
void distmult_grad(const float* __restrict eh, const float* __restrict er,
                   const float* __restrict et, float* __restrict gh,
                   float* __restrict gr, float* __restrict gt, float coeff,
                   std::int32_t k) {
  for (std::int32_t i = 0; i < k; ++i) {
    gh[i] += coeff * er[i] * et[i];
    gr[i] += coeff * eh[i] * et[i];
    gt[i] += coeff * eh[i] * er[i];
  }
}

// ---- RotatE ----------------------------------------------------------

/// cos/sin of each relation's phase row, computed once per unique relation
/// per block. Doubles, matching the scalar path's
/// `const double c = std::cos(phases[i])` exactly.
class RotatePhaseCache {
 public:
  RotatePhaseCache(std::int32_t k, std::size_t max_relations) : k_(k) {
    // Reserved up front so get() pointers stay stable across insertions.
    data_.reserve(2 * static_cast<std::size_t>(k) * max_relations);
  }

  /// [cos_0..cos_{k-1}, sin_0..sin_{k-1}] for relation r.
  const double* get(RelationId r, std::span<const float> phases) {
    const auto [it, inserted] = index_.try_emplace(r, data_.size());
    if (inserted) {
      const std::size_t off = data_.size();
      data_.resize(off + 2 * static_cast<std::size_t>(k_));
      for (std::int32_t i = 0; i < k_; ++i) {
        data_[off + i] = std::cos(phases[i]);
        data_[off + k_ + i] = std::sin(phases[i]);
      }
    }
    return data_.data() + it->second;
  }

 private:
  std::int32_t k_;
  std::unordered_map<RelationId, std::size_t> index_;
  std::vector<double> data_;
};

DYNKGE_KERNEL_CLONES
double rotate_distance(const float* eh, const float* et, const double* cs,
                       std::int32_t k) {
  double distance = 0.0;
  for (std::int32_t i = 0; i < k; ++i) {
    const double c = cs[i];
    const double s = cs[k + i];
    const double d_re = eh[i] * c - eh[k + i] * s - et[i];
    const double d_im = eh[i] * s + eh[k + i] * c - et[k + i];
    distance += std::sqrt(d_re * d_re + d_im * d_im + RotatEModel::kEpsilon);
  }
  return distance;
}

DYNKGE_KERNEL_CLONES
void rotate_grad(const float* __restrict eh, const float* __restrict et,
                 const double* __restrict cs, float* __restrict gh,
                 float* __restrict gr, float* __restrict gt, float coeff,
                 std::int32_t k) {
  for (std::int32_t i = 0; i < k; ++i) {
    const double c = cs[i];
    const double s = cs[k + i];
    const double h_re = eh[i], h_im = eh[k + i];
    const double d_re = h_re * c - h_im * s - et[i];
    const double d_im = h_re * s + h_im * c - et[k + i];
    const double m =
        std::sqrt(d_re * d_re + d_im * d_im + RotatEModel::kEpsilon);
    const double gd_re = -d_re / m * coeff;
    const double gd_im = -d_im / m * coeff;

    gh[i] += static_cast<float>(gd_re * c + gd_im * s);
    gh[k + i] += static_cast<float>(-gd_re * s + gd_im * c);
    gt[i] += static_cast<float>(-gd_re);
    gt[k + i] += static_cast<float>(-gd_im);
    gr[i] += static_cast<float>(gd_re * (-h_re * s - h_im * c) +
                                gd_im * (h_re * c - h_im * s));
  }
}

}  // namespace

// ---- ComplEx ---------------------------------------------------------

void ComplExModel::score_triples_block(std::span<const Triple> triples,
                                       std::span<double> out) const {
  const std::int32_t k = rank_;
  std::size_t j = 0;
  for (; j + 4 <= triples.size(); j += 4) {
    const float* eh[4];
    const float* er[4];
    const float* et[4];
    for (int q = 0; q < 4; ++q) {
      eh[q] = entities_.row(triples[j + q].head).data();
      er[q] = relations_.row(triples[j + q].relation).data();
      et[q] = entities_.row(triples[j + q].tail).data();
    }
    complex_score4(eh, er, et, k, out.data() + j);
  }
  for (; j < triples.size(); ++j) {
    out[j] = score(triples[j].head, triples[j].relation, triples[j].tail);
  }
}

void ComplExModel::accumulate_gradients_block(std::span<const GradWork> work,
                                              ModelGrads& grads) const {
  const std::int32_t k = rank_;
  for (const GradWork& w : work) {
    if (w.h == w.t) {
      accumulate_gradients(w.h, w.r, w.t, w.coeff, grads);
      continue;
    }
    complex_grad(entities_.row(w.h).data(), relations_.row(w.r).data(),
                 entities_.row(w.t).data(), w.gh, w.gr, w.gt, w.coeff, k);
  }
}

// ---- DistMult --------------------------------------------------------

void DistMultModel::score_triples_block(std::span<const Triple> triples,
                                        std::span<double> out) const {
  const std::int32_t k = rank_;
  std::size_t j = 0;
  for (; j + 4 <= triples.size(); j += 4) {
    const float* eh[4];
    const float* er[4];
    const float* et[4];
    for (int q = 0; q < 4; ++q) {
      eh[q] = entities_.row(triples[j + q].head).data();
      er[q] = relations_.row(triples[j + q].relation).data();
      et[q] = entities_.row(triples[j + q].tail).data();
    }
    distmult_score4(eh, er, et, k, out.data() + j);
  }
  for (; j < triples.size(); ++j) {
    out[j] = score(triples[j].head, triples[j].relation, triples[j].tail);
  }
}

void DistMultModel::accumulate_gradients_block(std::span<const GradWork> work,
                                               ModelGrads& grads) const {
  const std::int32_t k = rank_;
  for (const GradWork& w : work) {
    if (w.h == w.t) {
      accumulate_gradients(w.h, w.r, w.t, w.coeff, grads);
      continue;
    }
    distmult_grad(entities_.row(w.h).data(), relations_.row(w.r).data(),
                  entities_.row(w.t).data(), w.gh, w.gr, w.gt, w.coeff, k);
  }
}

// ---- TransE ----------------------------------------------------------

void TransEModel::score_triples_block(std::span<const Triple> triples,
                                      std::span<double> out) const {
  const std::int32_t k = rank_;
  std::size_t j = 0;
  for (; j + 4 <= triples.size(); j += 4) {
    const float* eh[4];
    const float* er[4];
    const float* et[4];
    for (int q = 0; q < 4; ++q) {
      eh[q] = entities_.row(triples[j + q].head).data();
      er[q] = relations_.row(triples[j + q].relation).data();
      et[q] = entities_.row(triples[j + q].tail).data();
    }
    double l1[4];
    transe_l1_4(eh, er, et, k, l1);
    out[j] = gamma_ - l1[0];
    out[j + 1] = gamma_ - l1[1];
    out[j + 2] = gamma_ - l1[2];
    out[j + 3] = gamma_ - l1[3];
  }
  for (; j < triples.size(); ++j) {
    out[j] = score(triples[j].head, triples[j].relation, triples[j].tail);
  }
}

void TransEModel::accumulate_gradients_block(std::span<const GradWork> work,
                                             ModelGrads& grads) const {
  const std::int32_t k = rank_;
  for (const GradWork& w : work) {
    if (w.h == w.t) {
      accumulate_gradients(w.h, w.r, w.t, w.coeff, grads);
      continue;
    }
    transe_grad(entities_.row(w.h).data(), relations_.row(w.r).data(),
                entities_.row(w.t).data(), w.gh, w.gr, w.gt, w.coeff, k);
  }
}

// ---- RotatE ----------------------------------------------------------

void RotatEModel::score_triples_block(std::span<const Triple> triples,
                                      std::span<double> out) const {
  const std::int32_t k = rank_;
  const std::size_t max_relations =
      std::min(triples.size(), static_cast<std::size_t>(num_relations()));
  RotatePhaseCache cache(k, max_relations);
  // The distance chains carry a sqrt each, so the win here is the phase
  // cache plus 4 independent chains hiding the sqrt latency.
  std::size_t j = 0;
  for (; j + 4 <= triples.size(); j += 4) {
    const float* eh[4];
    const float* et[4];
    const double* cs[4];
    for (int q = 0; q < 4; ++q) {
      const Triple& triple = triples[j + q];
      eh[q] = entities_.row(triple.head).data();
      et[q] = entities_.row(triple.tail).data();
      cs[q] = cache.get(triple.relation, relations_.row(triple.relation));
    }
    for (int q = 0; q < 4; ++q) {
      out[j + q] = gamma_ - rotate_distance(eh[q], et[q], cs[q], k);
    }
  }
  for (; j < triples.size(); ++j) {
    const Triple& triple = triples[j];
    const double* cs =
        cache.get(triple.relation, relations_.row(triple.relation));
    out[j] = gamma_ - rotate_distance(entities_.row(triple.head).data(),
                                      entities_.row(triple.tail).data(), cs,
                                      k);
  }
}

void RotatEModel::accumulate_gradients_block(std::span<const GradWork> work,
                                             ModelGrads& grads) const {
  const std::int32_t k = rank_;
  const std::size_t max_relations =
      std::min(work.size(), static_cast<std::size_t>(num_relations()));
  RotatePhaseCache cache(k, max_relations);
  for (const GradWork& w : work) {
    if (w.h == w.t) {
      // The scalar fallback recomputes cos/sin; same inputs, same values.
      accumulate_gradients(w.h, w.r, w.t, w.coeff, grads);
      continue;
    }
    const double* cs = cache.get(w.r, relations_.row(w.r));
    rotate_grad(entities_.row(w.h).data(), entities_.row(w.t).data(), cs,
                w.gh, w.gr, w.gt, w.coeff, k);
  }
}

}  // namespace dynkge::kge
