#include "kge/model_factory.hpp"

#include <algorithm>
#include <stdexcept>

#include "kge/complex_model.hpp"
#include "kge/distmult_model.hpp"
#include "kge/rotate_model.hpp"
#include "kge/transe_model.hpp"

namespace dynkge::kge {

std::unique_ptr<KgeModel> make_model(const std::string& name,
                                     std::int32_t num_entities,
                                     std::int32_t num_relations,
                                     std::int32_t rank) {
  if (name == "complex") {
    return std::make_unique<ComplExModel>(num_entities, num_relations, rank);
  }
  if (name == "distmult") {
    return std::make_unique<DistMultModel>(num_entities, num_relations, rank);
  }
  if (name == "transe") {
    return std::make_unique<TransEModel>(num_entities, num_relations, rank);
  }
  if (name == "rotate") {
    return std::make_unique<RotatEModel>(num_entities, num_relations, rank);
  }
  throw std::invalid_argument("unknown KGE model: " + name);
}

std::unique_ptr<KgeModel> clone_model(const KgeModel& model) {
  std::unique_ptr<KgeModel> clone;
  if (const auto* complex = dynamic_cast<const ComplExModel*>(&model)) {
    clone = std::make_unique<ComplExModel>(
        model.num_entities(), model.num_relations(), complex->rank());
  } else if (const auto* distmult =
                 dynamic_cast<const DistMultModel*>(&model)) {
    clone = std::make_unique<DistMultModel>(
        model.num_entities(), model.num_relations(), distmult->rank());
  } else if (const auto* transe = dynamic_cast<const TransEModel*>(&model)) {
    clone = std::make_unique<TransEModel>(model.num_entities(),
                                          model.num_relations(),
                                          transe->rank(), transe->gamma());
  } else if (const auto* rotate = dynamic_cast<const RotatEModel*>(&model)) {
    clone = std::make_unique<RotatEModel>(model.num_entities(),
                                          model.num_relations(),
                                          rotate->rank(), rotate->gamma());
  } else {
    throw std::invalid_argument("clone_model: unknown model type '" +
                                model.name() + "'");
  }
  clone->set_init_scale(model.init_scale());
  std::copy(model.entities().flat().begin(), model.entities().flat().end(),
            clone->entities().flat().begin());
  std::copy(model.relations().flat().begin(), model.relations().flat().end(),
            clone->relations().flat().begin());
  return clone;
}

}  // namespace dynkge::kge
