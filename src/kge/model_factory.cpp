#include "kge/model_factory.hpp"

#include <stdexcept>

#include "kge/complex_model.hpp"
#include "kge/distmult_model.hpp"
#include "kge/rotate_model.hpp"
#include "kge/transe_model.hpp"

namespace dynkge::kge {

std::unique_ptr<KgeModel> make_model(const std::string& name,
                                     std::int32_t num_entities,
                                     std::int32_t num_relations,
                                     std::int32_t rank) {
  if (name == "complex") {
    return std::make_unique<ComplExModel>(num_entities, num_relations, rank);
  }
  if (name == "distmult") {
    return std::make_unique<DistMultModel>(num_entities, num_relations, rank);
  }
  if (name == "transe") {
    return std::make_unique<TransEModel>(num_entities, num_relations, rank);
  }
  if (name == "rotate") {
    return std::make_unique<RotatEModel>(num_entities, num_relations, rank);
  }
  throw std::invalid_argument("unknown KGE model: " + name);
}

}  // namespace dynkge::kge
