// Minimal recursive-descent JSON parser — consumes the telemetry
// artifacts the system itself emits (metrics snapshots, Chrome traces,
// JSONL events, BENCH_*.json blocks) for analysis and validation. Strict
// on structure, no external dependencies. Promoted from the test-only
// json_lint.hpp when `dynkge analyze` started reading traces at runtime.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dynkge::util {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_bool() const { return type == Type::kBool; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) {
      throw std::runtime_error("json: missing key " + key);
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parse the whole input as one JSON value; trailing garbage throws.
  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    JsonValue value;
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      if (!value.object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              fail("bad \\u escape");
            }
          }
          // The emitters only escape control characters; validation is
          // enough, no UTF-8 decoding.
          out.push_back('?');
          pos_ += 4;
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number: " + token);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace dynkge::util
