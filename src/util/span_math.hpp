// Small dense-vector kernels used throughout the KGE models and optimizers.
//
// Kernel design notes (see DESIGN.md "Blocked training kernels"):
//
//  * Loop shapes, not intrinsics. Every kernel is a plain loop written so
//    the auto-vectorizer can do the work: independent elementwise ops, no
//    loop-carried dependence except explicit accumulation chains, span
//    sizes hoisted out of the condition. What actually blocks
//    vectorization in this codebase is not missing intrinsics but libm
//    errno side effects (std::sqrt) — the blocked-kernel translation
//    units are compiled with -fno-math-errno (value-safe: IEEE results
//    are unchanged) to lift that; see src/kge/CMakeLists.txt.
//
//  * Determinism contract. Reduction kernels (dot, nrm2, asum, the
//    trilinear forms) accumulate in double along a single left-to-right
//    chain and must never be reassociated: the trainer's byte-identity
//    guarantees depend on every mode producing the same accumulation
//    order. Throughput across *rows* comes from instruction-level
//    parallelism instead: the *_dot4 / *_l1_4 forms run four independent
//    row-triples at once, one accumulator chain per triple, each chain
//    ordered exactly like its scalar sibling.
//
//  * No FMA contraction. The build targets baseline x86-64 (no -mfma), so
//    a*b+c compiles to mul+add and the blocked kernels stay bit-identical
//    to the scalar reference path.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

namespace dynkge::util {

/// sum_i x[i] * y[i]
inline double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

/// y += a * x
inline void axpy(float a, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

/// x *= a
inline void scale(float a, std::span<float> x) noexcept {
  for (auto& v : x) v *= a;
}

/// y += x
inline void add(std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += x[i];
}

/// out = x - y (elementwise; sizes must match).
inline void diff(std::span<const float> x, std::span<const float> y,
                 std::span<float> out) noexcept {
  assert(x.size() == y.size() && x.size() == out.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

/// sum_i a[i] * b[i] * c[i] — the DistMult score form. Per-element product
/// order matches the scalar model code: (double(a) * b) * c.
inline double trilinear_dot(const float* a, const float* b, const float* c,
                            std::int32_t n) noexcept {
  double acc = 0.0;
  for (std::int32_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i] * c[i];
  }
  return acc;
}

/// Four independent trilinear dots at once (ILP form): out[j] is
/// bit-identical to trilinear_dot(a[j], b[j], c[j], n) — four separate
/// accumulation chains, each in the scalar order.
inline void trilinear_dot4(const float* const a[4], const float* const b[4],
                           const float* const c[4], std::int32_t n,
                           double out[4]) noexcept {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::int32_t i = 0; i < n; ++i) {
    acc0 += static_cast<double>(a[0][i]) * b[0][i] * c[0][i];
    acc1 += static_cast<double>(a[1][i]) * b[1][i] * c[1][i];
    acc2 += static_cast<double>(a[2][i]) * b[2][i] * c[2][i];
    acc3 += static_cast<double>(a[3][i]) * b[3][i] * c[3][i];
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

/// sum_i |h[i] + r[i] - t[i]| — the TransE L1 translation distance, with
/// the scalar model's per-element order: double(h) + r - t.
inline double l1_translation(const float* h, const float* r, const float* t,
                             std::int32_t n) noexcept {
  double acc = 0.0;
  for (std::int32_t i = 0; i < n; ++i) {
    acc += std::fabs(static_cast<double>(h[i]) + r[i] - t[i]);
  }
  return acc;
}

/// Four independent L1 translation distances (ILP form); each chain is
/// bit-identical to l1_translation on its row triple.
inline void l1_translation4(const float* const h[4], const float* const r[4],
                            const float* const t[4], std::int32_t n,
                            double out[4]) noexcept {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::int32_t i = 0; i < n; ++i) {
    acc0 += std::fabs(static_cast<double>(h[0][i]) + r[0][i] - t[0][i]);
    acc1 += std::fabs(static_cast<double>(h[1][i]) + r[1][i] - t[1][i]);
    acc2 += std::fabs(static_cast<double>(h[2][i]) + r[2][i] - t[2][i]);
    acc3 += std::fabs(static_cast<double>(h[3][i]) + r[3][i] - t[3][i]);
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

/// Euclidean norm.
inline double nrm2(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (const float v : x) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

/// Squared Euclidean norm (avoids the sqrt when comparing magnitudes).
inline double nrm2_squared(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (const float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

/// L1 norm.
inline double asum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (const float v : x) acc += std::fabs(v);
  return acc;
}

/// max_i |x[i]|; 0 for an empty span.
inline float amax(std::span<const float> x) noexcept {
  float m = 0.0f;
  for (const float v : x) m = std::max(m, std::fabs(v));
  return m;
}

/// mean_i |x[i]|; 0 for an empty span.
inline float amean(std::span<const float> x) noexcept {
  if (x.empty()) return 0.0f;
  return static_cast<float>(asum(x) / static_cast<double>(x.size()));
}

/// y = x (sizes must match).
inline void copy(std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// x = 0
inline void set_zero(std::span<float> x) noexcept {
  for (auto& v : x) v = 0.0f;
}

/// Numerically stable log(1 + exp(z)) (softplus).
inline double softplus(double z) noexcept {
  if (z > 30.0) return z;
  if (z < -30.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

/// Logistic sigmoid 1 / (1 + exp(-z)) without overflow.
inline double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace dynkge::util
