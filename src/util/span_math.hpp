// Small dense-vector kernels used throughout the KGE models and optimizers.
//
// These are deliberately plain loops: the vectors involved are embedding
// rows (tens to hundreds of floats), where the compiler's auto-vectorizer
// does as well as hand-tuned intrinsics and the code stays portable.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>

namespace dynkge::util {

/// sum_i x[i] * y[i]
inline double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

/// y += a * x
inline void axpy(float a, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

/// x *= a
inline void scale(float a, std::span<float> x) noexcept {
  for (auto& v : x) v *= a;
}

/// Euclidean norm.
inline double nrm2(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (const float v : x) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

/// Squared Euclidean norm (avoids the sqrt when comparing magnitudes).
inline double nrm2_squared(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (const float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

/// L1 norm.
inline double asum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (const float v : x) acc += std::fabs(v);
  return acc;
}

/// max_i |x[i]|; 0 for an empty span.
inline float amax(std::span<const float> x) noexcept {
  float m = 0.0f;
  for (const float v : x) m = std::max(m, std::fabs(v));
  return m;
}

/// mean_i |x[i]|; 0 for an empty span.
inline float amean(std::span<const float> x) noexcept {
  if (x.empty()) return 0.0f;
  return static_cast<float>(asum(x) / static_cast<double>(x.size()));
}

/// y = x (sizes must match).
inline void copy(std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// x = 0
inline void set_zero(std::span<float> x) noexcept {
  for (auto& v : x) v = 0.0f;
}

/// Numerically stable log(1 + exp(z)) (softplus).
inline double softplus(double z) noexcept {
  if (z > 30.0) return z;
  if (z < -30.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

/// Logistic sigmoid 1 / (1 + exp(-z)) without overflow.
inline double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace dynkge::util
