#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dynkge::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& os, const std::string& caption) const {
  os << caption << '\n' << to_text() << '\n';
}

}  // namespace dynkge::util
