// Paper-style table rendering for the bench harness.
//
// Each experiment binary prints the rows of the table/figure it reproduces
// in an aligned text table (and optionally CSV for plotting). Cells are
// strings; numeric helpers format with a fixed precision so the output is
// diffable across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dynkge::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent add_* calls append cells to it.
  Table& begin_row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(std::int64_t value);
  Table& add(std::size_t value);
  Table& add(int value);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render as an aligned text table with a rule under the header.
  std::string to_text() const;

  /// Render as CSV (header row first).
  std::string to_csv() const;

  /// Convenience: print to_text() to the stream with a caption line.
  void print(std::ostream& os, const std::string& caption) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with log output).
std::string format_double(double value, int precision);

}  // namespace dynkge::util
