// Per-thread CPU time measurement.
//
// The simulated cluster co-schedules its P rank programs on a host thread
// pool (util::ThreadPool::run_cohort): up to host_threads ranks run on
// persistent pool workers and the rest on transient overflow threads, all
// concurrently, on however many physical cores the host happens to have.
// Wall-clock time would conflate ranks timesharing a core with genuine
// work, so compute segments are measured with CLOCK_THREAD_CPUTIME_ID:
// the CPU time consumed by *this* thread, immune to preemption by sibling
// ranks. A rank runs on exactly one host thread for its whole lifetime,
// so the per-thread clock is also per-rank.
#pragma once

#include <ctime>

namespace dynkge::util {

/// CPU seconds consumed by the calling thread since it started.
inline double thread_cpu_seconds() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Scoped accumulator: adds the thread-CPU time of its lifetime to a sink.
class ThreadCpuTimer {
 public:
  explicit ThreadCpuTimer(double& sink) noexcept
      : sink_(sink), start_(thread_cpu_seconds()) {}
  ~ThreadCpuTimer() { sink_ += thread_cpu_seconds() - start_; }

  ThreadCpuTimer(const ThreadCpuTimer&) = delete;
  ThreadCpuTimer& operator=(const ThreadCpuTimer&) = delete;

 private:
  double& sink_;
  double start_;
};

}  // namespace dynkge::util
