#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>

namespace dynkge::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wakeup_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_;
      wakeup_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      --idle_;
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  const std::size_t chunks = std::min(total, size());
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;

  // The last chunk runs inline on the calling thread: one less queue
  // round-trip, and a saturated pool still makes progress.
  std::vector<std::future<void>> pending;
  pending.reserve(chunks - 1);
  std::size_t begin = 0;
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    pending.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  // Every chunk must finish before returning — the submitted lambdas
  // reference `fn` and the caller's captures — so collect errors instead
  // of letting the first one unwind past live tasks.
  std::exception_ptr error;
  try {
    fn(begin, total);
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_cohort(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // Claim-once protocol: every runner (pool worker or overflow thread)
  // draws the next unclaimed rank and executes it. Spawning more runners
  // than ranks is harmless — surplus runners find nothing and exit — which
  // is what makes the liveness rescue below safe.
  struct Cohort {
    std::mutex mu;
    std::condition_variable done;
    std::size_t next_rank = 0;
    std::size_t started = 0;
    std::size_t finished = 0;
    std::vector<std::exception_ptr> errors;
  };
  auto cohort = std::make_shared<Cohort>();
  cohort->errors.resize(n);

  // `body` is captured by reference: the caller blocks until every rank
  // finished, so the reference outlives all runners.
  auto runner = [cohort, &body, n] {
    while (true) {
      std::size_t rank;
      {
        std::lock_guard<std::mutex> lock(cohort->mu);
        if (cohort->next_rank >= n) return;
        rank = cohort->next_rank++;
        ++cohort->started;
      }
      try {
        body(rank);
      } catch (...) {
        cohort->errors[rank] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(cohort->mu);
        ++cohort->finished;
      }
      cohort->done.notify_all();
    }
  };

  // Hand ranks to workers that are idle right now; everything else gets a
  // transient overflow thread so all n bodies are live together.
  std::size_t pool_share = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      pool_share = std::min(n, idle_);
      for (std::size_t i = 0; i < pool_share; ++i) queue_.emplace(runner);
    }
  }
  if (pool_share > 0) wakeup_.notify_all();

  std::vector<std::thread> overflow;
  overflow.reserve(n - pool_share);
  for (std::size_t i = pool_share; i < n; ++i) overflow.emplace_back(runner);

  // Liveness rescue: an idle-counted worker can be stolen by a concurrent
  // submit() racing ahead of our queued runner, leaving a rank unstarted
  // while its siblings block at a barrier. If ranks are still unclaimed
  // after a grace period, give each one its own overflow thread.
  {
    std::unique_lock<std::mutex> lock(cohort->mu);
    while (cohort->finished < n) {
      if (cohort->done.wait_for(lock, std::chrono::milliseconds(100), [&] {
            return cohort->finished == n;
          })) {
        break;
      }
      const std::size_t unstarted = n - cohort->started;
      if (unstarted > 0) {
        lock.unlock();
        for (std::size_t i = 0; i < unstarted; ++i) {
          overflow.emplace_back(runner);
        }
        lock.lock();
      }
    }
  }
  for (auto& thread : overflow) thread.join();

  for (auto& error : cohort->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace dynkge::util
