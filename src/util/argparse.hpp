// Minimal command-line flag parser for the bench harness and examples.
//
// Usage:
//   util::ArgParser args(argc, argv);
//   const int nodes = args.get_int("nodes", 4);
//   const std::string scale = args.get_string("scale", "mini");
//   if (args.has_flag("help")) { ... }
//
// Flags are written as `--name value` or `--name=value`; boolean flags as
// bare `--name`. Unknown positional arguments are rejected so typos fail
// loudly instead of silently running the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dynkge::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if --name appeared (with or without a value).
  bool has_flag(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --nodes 1,2,4,8.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace dynkge::util
