#include "util/argparse.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace dynkge::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself a flag, else bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool ArgParser::has_flag(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes" || it->second == "on") {
    return true;
  }
  return false;
}

std::vector<std::int64_t> ArgParser::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  return out;
}

}  // namespace dynkge::util
