// Shared fixed-size worker pool.
//
// One pool implementation serves both halves of the system: serving uses
// submit()/parallel_for() to drain streams of small independent tasks
// (serve/scorer, serve/service), and training uses run_cohort() to execute
// the simulated cluster's P rank bodies concurrently (comm/Cluster). The
// pool is deliberately minimal: one shared FIFO queue, condition-variable
// wakeup, futures for completion. Every use is coarse (an entity block, a
// whole query, an entire rank program), so a lock around the queue is
// nowhere near the bottleneck.
//
// Cohorts are the one structured primitive: run_cohort(n, body) guarantees
// that all n bodies are live at the same time, which is what the
// barrier-synchronized rank programs in comm/ require — a plain FIFO pool
// with fewer than n free workers would start a prefix of the ranks, let
// them block at the first barrier, and deadlock. Ranks beyond the pool's
// free capacity run on transient overflow threads instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace dynkge::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: outstanding tasks are completed, queued tasks are
  /// still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// std::thread::hardware_concurrency() with the zero-means-unknown case
  /// clamped to 1 — the default sizing for host-side parallelism knobs.
  static std::size_t hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
  }

  /// Enqueue `fn` and get a future for its result. Safe from any thread,
  /// including from inside a task (the queue never blocks on submit).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    wakeup_.notify_one();
    return future;
  }

  /// Split [0, total) into roughly even contiguous chunks (at most one per
  /// worker), run `fn(begin, end)` on the pool, and wait for all chunks.
  /// One chunk runs inline on the calling thread. Exceptions from `fn`
  /// propagate to the caller (first one wins). Must not be called from a
  /// pool worker: the inline chunk makes progress but the submitted chunks
  /// can deadlock a fully occupied pool.
  void parallel_for(std::size_t total,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Run body(0), ..., body(n-1) concurrently and wait for all of them.
  ///
  /// Unlike n submit() calls, the cohort is co-scheduled: every body is
  /// guaranteed to be running at the same time, so bodies may synchronize
  /// with each other (barriers, collectives). Idle pool workers are used
  /// first; the remainder — because the pool is smaller than n or its
  /// workers are busy — runs on transient overflow threads that exit when
  /// the cohort finishes. Each rank executes exactly once, no matter which
  /// thread claims it, so results cannot depend on the pool's size.
  ///
  /// Exceptions from bodies are collected and the lowest-rank one is
  /// rethrown after every body finished. Must not be called from a pool
  /// worker (the caller blocks until the cohort completes).
  void run_cohort(std::size_t n,
                  const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wakeup_;
  std::size_t idle_ = 0;  ///< workers currently waiting for a task
  bool stopping_ = false;
};

}  // namespace dynkge::util
