// Simple wall-clock stopwatch for coarse host-side timing (harness overhead,
// end-to-end run duration). Rank-level timing uses thread_clock.hpp instead.
#pragma once

#include <chrono>

namespace dynkge::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dynkge::util
