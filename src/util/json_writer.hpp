// Minimal streaming JSON writer — enough to export training reports and
// experiment results for downstream plotting, with proper string escaping
// and locale-independent number formatting. No external dependencies.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace dynkge::util {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ << '{';
    stack_.push_back(State::kFirstInObject);
    return *this;
  }
  JsonWriter& end_object() {
    out_ << '}';
    stack_.pop_back();
    mark_value_written();
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    out_ << '[';
    stack_.push_back(State::kFirstInArray);
    return *this;
  }
  JsonWriter& end_array() {
    out_ << ']';
    stack_.pop_back();
    mark_value_written();
    return *this;
  }

  /// Write the key of the next value (object context only).
  JsonWriter& key(const std::string& name) {
    prefix();
    write_string(name);
    out_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& text) {
    prefix();
    write_string(text);
    mark_value_written();
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string(text)); }
  JsonWriter& value(bool flag) {
    prefix();
    out_ << (flag ? "true" : "false");
    mark_value_written();
    return *this;
  }
  JsonWriter& value(double number) {
    prefix();
    // Shortest round-trip-safe representation.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out_ << buffer;
    mark_value_written();
    return *this;
  }
  JsonWriter& value(std::int64_t number) {
    prefix();
    out_ << number;
    mark_value_written();
    return *this;
  }
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(std::size_t number) {
    return value(static_cast<std::int64_t>(number));
  }

  /// Splice pre-serialized JSON in as the next value (e.g. embedding a
  /// MetricsRegistry snapshot inside a report). The caller guarantees
  /// `json_text` is itself well-formed JSON.
  JsonWriter& raw(const std::string& json_text) {
    prefix();
    out_ << json_text;
    mark_value_written();
    return *this;
  }

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  std::string str() const { return out_.str(); }

 private:
  enum class State { kFirstInObject, kInObject, kFirstInArray, kInArray };

  void prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;  // value immediately follows its key, no comma
    }
    if (stack_.empty()) return;
    State& state = stack_.back();
    if (state == State::kInObject || state == State::kInArray) {
      out_ << ',';
    }
  }

  void mark_value_written() {
    if (stack_.empty()) return;
    State& state = stack_.back();
    if (state == State::kFirstInObject) state = State::kInObject;
    if (state == State::kFirstInArray) state = State::kInArray;
  }

  void write_string(const std::string& text) {
    out_ << '"';
    for (const char c : text) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\r':
          out_ << "\\r";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ << buffer;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

}  // namespace dynkge::util
