// Tiny leveled logger. Thread safe (one mutex around the stream) because the
// simulated cluster logs from many rank threads at once.
//
// The level is read once from the DYNKGE_LOG environment variable
// (error|warn|info|debug); the default is `info`.
#pragma once

#include <sstream>
#include <string>

namespace dynkge::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// The process-wide minimum level that will be printed.
LogLevel log_level();

/// Override the level programmatically (tests silence logging with this).
void set_log_level(LogLevel level);

/// Emit one line at the given level. Prefer the DYNKGE_LOG_* macros below.
void log_line(LogLevel level, const std::string& message);

}  // namespace dynkge::util

#define DYNKGE_LOG_AT(level, expr)                                     \
  do {                                                                 \
    if (static_cast<int>(level) <=                                     \
        static_cast<int>(::dynkge::util::log_level())) {               \
      std::ostringstream dynkge_log_oss;                               \
      dynkge_log_oss << expr;                                          \
      ::dynkge::util::log_line(level, dynkge_log_oss.str());           \
    }                                                                  \
  } while (0)

#define DYNKGE_LOG_ERROR(expr) \
  DYNKGE_LOG_AT(::dynkge::util::LogLevel::kError, expr)
#define DYNKGE_LOG_WARN(expr) \
  DYNKGE_LOG_AT(::dynkge::util::LogLevel::kWarn, expr)
#define DYNKGE_LOG_INFO(expr) \
  DYNKGE_LOG_AT(::dynkge::util::LogLevel::kInfo, expr)
#define DYNKGE_LOG_DEBUG(expr) \
  DYNKGE_LOG_AT(::dynkge::util::LogLevel::kDebug, expr)
