// Deterministic, splittable random number generation.
//
// Everything random in dynkge flows from a single experiment seed through
// explicitly derived streams (one per rank, per epoch, per purpose), so a
// training run is reproducible bit-for-bit regardless of thread scheduling.
// We avoid <random> distributions because their outputs are not guaranteed
// to be identical across standard library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace dynkge::util {

/// SplitMix64: used to expand seeds into well-mixed state. Passes BigCrush.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix an arbitrary list of 64-bit values into one well-distributed seed.
/// Used to derive independent streams: derive_seed(root, rank, epoch, tag).
template <typename... Ts>
constexpr std::uint64_t derive_seed(std::uint64_t root, Ts... parts) noexcept {
  std::uint64_t s = root;
  ((s = splitmix64(s) ^ (splitmix64(s) + static_cast<std::uint64_t>(parts))),
   ...);
  return splitmix64(s);
}

/// Xoshiro256** — fast, high quality, 2^256 period. The workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed the four words via SplitMix64 as recommended by the authors.
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next_u64(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply-shift; rejection keeps the distribution exact.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  constexpr float next_float() noexcept {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool next_bernoulli(double p) noexcept {
    return next_double() < p;
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double next_normal() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    // Guard against log(0).
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.141592653589793238462643 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean mu and standard deviation sigma.
  double next_normal(double mu, double sigma) noexcept {
    return mu + sigma * next_normal();
  }

  /// A new generator whose stream is statistically independent of this one.
  constexpr Rng split() noexcept { return Rng{next_u64() ^ 0xa0761d6478bd642fULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

/// Zipf(s) sampler over {0, .., n-1} via inverse-CDF on a precomputed table.
/// Used by the synthetic KG generator for relation/entity popularity skews.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Draw one index; smaller indices are more likely.
  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

inline ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

inline std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace dynkge::util
