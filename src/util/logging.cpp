#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dynkge::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("DYNKGE_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kInfo;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

void log_line(LogLevel level, const std::string& message) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[dynkge %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace dynkge::util
