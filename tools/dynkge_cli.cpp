// dynkge — command-line interface to the library.
//
//   dynkge generate --preset fb15k_mini --out <dir>        write a synthetic
//                                                          dataset (OpenKE)
//   dynkge stats    --data <dir>                           dataset report
//   dynkge train    --data <dir> | --preset <name>         train a model
//                   [--strategy allreduce|allgather|ps|rs|rs1bit|drs|
//                    drs1bit|full] [--nodes N] [--rank N] [--batch N]
//                   [--lr X] [--tolerance N] [--max-epochs N] [--seed N]
//                   [--model complex|distmult|transe]
//                   [--host-threads N]  host threads the simulated ranks
//                                       run on (0 = all cores; results are
//                                       bit-identical for every value)
//                   [--probe-interval N]  dynamic-mode probe period k
//                   [--metrics-out f]   metrics snapshot (.prom ->
//                                       Prometheus text, else JSON)
//                   [--trace-out f.json]  Chrome trace-event timeline
//                                       (load in Perfetto/chrome://tracing)
//                   [--events-out f.jsonl]  per-epoch per-rank strategy
//                                       event stream (probe decisions,
//                                       keep rate, bytes on wire, ...)
//                   [--checkpoint-dir d]  write atomic training snapshots
//                                       into d (full state: model, Adam
//                                       moments, scheduler, DRS, RNG
//                                       streams, residuals)
//                   [--checkpoint-every N]  snapshot period in epochs (1)
//                   [--checkpoint-keep N]  snapshots retained: the primary
//                                       plus N-1 epoch-stamped history
//                                       copies (default 1); never deletes
//                                       the last known-good snapshot
//                   [--checkpoint-on-error fail|skip|retry]  what a failed
//                                       snapshot write does: kill the run
//                                       (default), log and keep training,
//                                       or re-attempt then degrade to skip
//                   [--resume]          continue from d's newest valid
//                                       snapshot (a corrupt newest falls
//                                       back to the next older one); the
//                                       final embeddings are byte-identical
//                                       to an uninterrupted run
//                   [--fault-spec s]    inject collective faults, e.g.
//                                       "crash@1@40,transient@0@12@2,
//                                       straggler@2@30@0.5,corrupt@1@e2,
//                                       hang@0@e3"; INDEX may be an epoch
//                                       address like e2 (see comm/fault.hpp)
//                   [--wire-checksums]  FNV-1a payload checksums on every
//                                       collective even with no fault spec
//                   [--collective-deadline X]  watchdog: a hung collective
//                                       or a straggler stalled past X sim
//                                       seconds becomes a deterministic
//                                       rank failure (0 = off; required
//                                       for hang@ faults)
//                   [--fault-retry-limit N]  transient-retry attempts per
//                                       collective (default 4)
//                   [--fault-backoff-base X]  modeled seconds before the
//                                       first transient retry (default
//                                       1e-3, doubling per retry)
//                   [--elastic]         survive permanent rank crashes:
//                                       shrink the world to the survivors,
//                                       restore the last in-run snapshot,
//                                       replay the poisoned epoch (exit 0
//                                       on recovery, 3 when the budget
//                                       below is exhausted)
//                   [--max-rank-failures N]  cumulative rank-crash budget
//                                       for --elastic (default 0)
//                   [--kill-at-epoch N] test hook: SIGKILL self right after
//                                       epoch N's snapshot is durable
//                   [--kill-mid-write B]  with --kill-at-epoch: die after B
//                                       bytes of the snapshot temp file
//                                       instead (atomicity harness)
//                   [--kill-in-recovery N]  test hook: SIGKILL self in the
//                                       middle of the N-th elastic rebuild
//                   [--disk-fault-at-epoch N]  test hook: snapshot writes
//                                       fail with ENOSPC starting at epoch
//                                       N (exercises --checkpoint-on-error)
//                   [--disk-fault-attempts K]  how many writes fail (1)
//                   [--select dense|rs|topk]  override the strategy's
//                                       gradient selection (topk = entity-
//                                       wise Top-K by accumulated row norm
//                                       with error feedback)
//                   [--topk-k N]        rows each rank keeps per step under
//                                       Top-K selection
//                   [--drs-topk-arm]    let the DRS probe schedule compare
//                                       a Top-K arm against the strategy's
//                                       base selection (needs a drs*
//                                       strategy and --topk-k)
//                   [--trainer hogwild|federated]  alternative trainers;
//                                       federated adds:
//                   [--clients M]       simulated clients, each holding a
//                                       private triple shard (default 2)
//                   [--local-epochs E]  local SGD passes per round (1)
//                   [--rounds R]        aggregation rounds (default 10)
//                                       (faults/elastic flags above apply;
//                                       exit 3 when a client crash exceeds
//                                       the --max-rank-failures budget)
//                   [--save-model file] [--report file.json]
//   dynkge analyze  --trace t.json --events e.jsonl        critical-path +
//                   [--json] [--out file]                  strategy-decision
//                                                          report from a
//                                                          train run's
//                                                          telemetry: per
//                                                          epoch the rank
//                                                          that bounded it,
//                                                          its blocking
//                                                          collective, comm
//                                                          fraction and
//                                                          straggler skew,
//                                                          plus an audit of
//                                                          every DRS probe
//                                                          decision against
//                                                          the recorded
//                                                          costs (exit 4
//                                                          when a decision
//                                                          contradicts the
//                                                          measurements)
//   dynkge eval     --data <dir> --model-file <file>       evaluate a saved
//                                                          model
//   dynkge predict  --data <dir> --model-file <file>       top-k entities
//                   --head H | --tail T  --relation R      for a query,
//                   [--topk K] [--threads N] [--filter]    served by
//                                                          serve/TopKScorer
//   dynkge serve    --data <dir> | --preset <name>         serve a model
//                   [--model-file f]                       while streaming
//                   --stream-updates <file>                KG updates into
//                   [--queries N] [--clients N]            it: concurrent
//                   [--threads N] [--cache N]              Zipf-skewed reads
//                   [--topk K] [--seed N]                  against versioned
//                   [--delta-batch N] [--refresh-steps N]  snapshots, deltas
//                   [--refresh-lr X] [--max-inflight N]    batched through
//                   [--max-version-lag N]                  DeltaIngestor and
//                   [--metrics-out f] [--trace-out f]      hot-swapped with
//                   [--events-out f.jsonl]                 zero downtime
//   dynkge serve-bench --data <dir> | --preset <name>      replay a skewed
//                   [--model-file f] [--queries N]         synthetic query
//                   [--distinct N] [--topk K]              stream through
//                   [--threads N] [--cache N] [--batch N]  InferenceService;
//                   [--seed N] [--metrics-out f]           report p50/p95/p99
//                   [--mixed-updates N] [--delta-batch N]  latency, QPS, and
//                   [--refresh-steps N]                    speedup over the
//                   [--bench-json f]                       single-query scan;
//                                                          --mixed-updates
//                                                          adds a churn phase
//                                                          (reads racing delta
//                                                          publishes) and
//                                                          --bench-json emits
//                                                          machine-readable
//                                                          results for
//                                                          tools/check_bench.py
#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "stream/delta.hpp"
#include "stream/delta_ingestor.hpp"

#include "comm/fault.hpp"
#include "core/distributed_eval.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "core/federated.hpp"
#include "core/hogwild_trainer.hpp"
#include "core/report_json.hpp"
#include "core/strategy_config.hpp"
#include "core/trainer.hpp"
#include "kge/model_factory.hpp"
#include "kge/serialize.hpp"
#include "kge/statistics.hpp"
#include "kge/synthetic.hpp"
#include "kge/tsv_loader.hpp"
#include "util/argparse.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace dynkge;

namespace {

int usage() {
  std::cerr << "usage: dynkge <generate|stats|train|analyze|eval|predict|"
               "serve|serve-bench> [--flags]\n"
               "(see the header of tools/dynkge_cli.cpp)\n";
  return 2;
}

kge::SyntheticSpec preset_by_name(const std::string& name) {
  if (name == "fb15k_mini") return kge::SyntheticSpec::fb15k_mini();
  if (name == "fb15k_full") return kge::SyntheticSpec::fb15k_full();
  if (name == "fb250k_mini") return kge::SyntheticSpec::fb250k_mini();
  if (name == "fb250k_full") return kge::SyntheticSpec::fb250k_full();
  throw std::invalid_argument("unknown preset: " + name +
                              " (expected fb15k_mini|fb15k_full|"
                              "fb250k_mini|fb250k_full)");
}

kge::Dataset dataset_from_flags(const util::ArgParser& args) {
  const std::string data_dir = args.get_string("data", "");
  if (!data_dir.empty()) return kge::load_dataset(data_dir);
  return kge::generate_synthetic(
      preset_by_name(args.get_string("preset", "fb15k_mini")));
}

core::StrategyConfig strategy_by_name(const std::string& name,
                                      int negatives, int ss_sampled) {
  if (name == "allreduce") {
    return core::StrategyConfig::baseline_allreduce(negatives);
  }
  if (name == "allgather") {
    return core::StrategyConfig::baseline_allgather(negatives);
  }
  if (name == "ps" || name == "param-server") {
    return core::StrategyConfig::baseline_parameter_server(negatives);
  }
  if (name == "rs") return core::StrategyConfig::rs(negatives);
  if (name == "drs") return core::StrategyConfig::drs(negatives);
  if (name == "rs1bit") return core::StrategyConfig::rs_1bit(negatives);
  if (name == "drs1bit") return core::StrategyConfig::drs_1bit(negatives);
  if (name == "full") {
    return core::StrategyConfig::drs_1bit_rp_ss(ss_sampled, 1);
  }
  throw std::invalid_argument("unknown strategy: " + name);
}

/// --select / --topk-k / --drs-topk-arm override whatever selection the
/// strategy preset chose (the trainer validates the combination by flag
/// name).
void apply_selection_flags(const util::ArgParser& args,
                           core::StrategyConfig& strategy) {
  const std::string select = args.get_string("select", "");
  if (!select.empty()) {
    if (select == "dense") {
      strategy.selection = core::SelectionMode::kNone;
    } else if (select == "rs") {
      strategy.selection = core::SelectionMode::kBernoulli;
      strategy.selection_residual = true;
    } else if (select == "topk") {
      strategy.selection = core::SelectionMode::kTopK;
      strategy.selection_residual = true;
    } else {
      throw std::invalid_argument("unknown --select: " + select +
                                  " (expected dense|rs|topk)");
    }
  }
  strategy.topk_k =
      static_cast<int>(args.get_int("topk-k", strategy.topk_k));
  if (args.get_bool("drs-topk-arm", false)) strategy.dynamic_topk_arm = true;
}

int cmd_generate(const util::ArgParser& args) {
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out <dir> is required\n";
    return 2;
  }
  kge::SyntheticSpec spec =
      preset_by_name(args.get_string("preset", "fb15k_mini"));
  spec.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(spec.seed)));
  const kge::Dataset dataset = kge::generate_synthetic(spec);
  kge::save_openke(dataset, out);
  std::cout << dataset.summary("generated") << "\nwritten to " << out
            << " (OpenKE layout)\n";
  return 0;
}

int cmd_stats(const util::ArgParser& args) {
  const kge::Dataset dataset = dataset_from_flags(args);
  std::cout << dataset.summary("dataset") << "\n"
            << kge::compute_statistics(dataset).summary() << "\n";
  return 0;
}

int cmd_train_hogwild(const util::ArgParser& args,
                      const kge::Dataset& dataset) {
  core::HogwildConfig config;
  config.model_name = args.get_string("model", "complex");
  config.embedding_rank =
      static_cast<std::int32_t>(args.get_int("rank", 32));
  config.num_threads = static_cast<int>(args.get_int("nodes", 4));
  config.negatives = static_cast<int>(args.get_int("negatives", 4));
  config.lr.base_lr = args.get_double("lr", 0.05);
  config.lr.max_scale = 1;
  config.lr.tolerance = static_cast<int>(args.get_int("tolerance", 15));
  config.max_epochs = static_cast<int>(args.get_int("max-epochs", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));

  std::cout << "training hogwild (" << config.model_name << ", rank "
            << config.embedding_rank << ") on " << config.num_threads
            << " shared-memory threads...\n";
  const auto report = core::HogwildTrainer(dataset, config).train();
  std::cout << "epochs: " << report.epochs
            << "  cpu: " << report.total_cpu_seconds << " s"
            << "  TCA: " << report.tca << " %"
            << "  MRR: " << report.ranking.mrr << "\n";
  const std::string model_path = args.get_string("save-model", "");
  if (!model_path.empty()) {
    kge::save_model(*report.model, model_path);
    std::cout << "model written to " << model_path << "\n";
  }
  return 0;
}

int cmd_train_federated(const util::ArgParser& args,
                        const kge::Dataset& dataset) {
  core::FederatedConfig config;
  config.model_name = args.get_string("model", "complex");
  config.embedding_rank =
      static_cast<std::int32_t>(args.get_int("rank", 32));
  config.negatives = static_cast<int>(args.get_int("negatives", 4));
  config.lr.base_lr = args.get_double("lr", 0.05);
  config.lr.tolerance = static_cast<int>(args.get_int("tolerance", 15));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  config.host_threads = static_cast<int>(args.get_int("host-threads", 0));
  config.policy.num_clients = static_cast<int>(args.get_int("clients", 2));
  config.policy.local_epochs =
      static_cast<int>(args.get_int("local-epochs", 1));
  config.policy.rounds = static_cast<int>(args.get_int("rounds", 10));
  config.policy.elastic.enabled = args.get_bool("elastic", false);
  config.policy.elastic.max_rank_failures =
      static_cast<int>(args.get_int("max-rank-failures", 0));
  // Default exchange: random selection with error feedback; --select /
  // --topk-k switch it (the transport is parameter-server regardless).
  config.strategy = core::StrategyConfig::rs(config.negatives);
  apply_selection_flags(args, config.strategy);

  std::unique_ptr<comm::FaultInjector> faults;
  const std::string fault_spec = args.get_string("fault-spec", "");
  const double deadline = args.get_double("collective-deadline", 0.0);
  if (!fault_spec.empty() || args.get_bool("wire-checksums", false) ||
      deadline > 0.0) {
    comm::RetryPolicy retry;
    retry.max_attempts =
        static_cast<int>(args.get_int("fault-retry-limit", 4));
    retry.backoff_seconds = args.get_double("fault-backoff-base", 1e-3);
    faults = std::make_unique<comm::FaultInjector>(
        fault_spec.empty() ? std::vector<comm::FaultEvent>{}
                           : comm::FaultInjector::parse_spec(fault_spec),
        retry, deadline);
    config.fault_injector = faults.get();
  }

  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceWriter> trace;
  std::unique_ptr<obs::EventLog> events;
  const std::string metrics_path = args.get_string("metrics-out", "");
  const std::string trace_path = args.get_string("trace-out", "");
  const std::string events_path = args.get_string("events-out", "");
  if (!metrics_path.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    config.telemetry.metrics = metrics.get();
  }
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::TraceWriter>();
    config.telemetry.trace = trace.get();
  }
  if (!events_path.empty()) {
    events = std::make_unique<obs::EventLog>(events_path);
    config.telemetry.events = events.get();
  }

  std::cout << "training federated " << config.strategy.label() << " ("
            << config.model_name << ", rank " << config.embedding_rank
            << ") on " << config.policy.num_clients << " clients, "
            << config.policy.local_epochs << " local epochs x "
            << config.policy.rounds << " rounds...\n";
  core::FederatedReport report;
  try {
    report = core::FederatedTrainer(dataset, config).train();
  } catch (const comm::RankFailedError& error) {
    // Same contract as the distributed trainer: a client crash beyond the
    // elastic budget is exit 3, distinct from bad flags.
    std::cerr << "dynkge train: " << error.what() << "\n";
    return 3;
  }
  if (report.recoveries > 0) {
    std::cout << "elastic: " << report.recoveries << " recoveries from "
              << report.client_failures << " client failures, finished on "
              << report.active_clients << " of " << report.num_clients
              << " clients\n";
  }
  std::cout << "rounds: " << report.rounds
            << "  TT(sim): " << report.total_sim_seconds << " s"
            << "  TCA: " << report.tca << " %"
            << "  MRR: " << report.ranking.mrr << "\n"
            << "replicas consistent: "
            << (report.replicas_consistent ? "yes" : "NO") << "\n";

  const std::string model_path = args.get_string("save-model", "");
  if (!model_path.empty()) {
    kge::save_model(*report.model, model_path);
    std::cout << "model written to " << model_path << "\n";
  }
  if (metrics != nullptr) {
    obs::write_metrics(*metrics, metrics_path);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  if (trace != nullptr) {
    trace->write(trace_path);
    std::cout << "trace written to " << trace_path << "\n";
  }
  if (events != nullptr) {
    events->flush();
    std::cout << "events written to " << events_path << " ("
              << events->lines_written() << " lines)\n";
  }
  return 0;
}

/// `dynkge train --help`: the fault-tolerance / robustness flag table
/// (the full flag reference lives in the header comment of this file).
int cmd_train_help() {
  std::cout <<
      "dynkge train — train a KGE model on a simulated cluster\n"
      "\n"
      "Core:\n"
      "  --data DIR | --preset NAME   dataset (OpenKE layout | synthetic)\n"
      "  --strategy S                 allreduce|allgather|ps|rs|rs1bit|drs|\n"
      "                               drs1bit|full\n"
      "  --nodes N --rank N --batch N --lr X --tolerance N --max-epochs N\n"
      "  --seed N --model complex|distmult|transe --host-threads N\n"
      "  --select dense|rs|topk --topk-k N --drs-topk-arm\n"
      "  --trainer distributed|hogwild|federated\n"
      "\n"
      "Checkpointing:\n"
      "  --checkpoint-dir DIR         atomic full-state snapshots into DIR\n"
      "  --checkpoint-every N         snapshot period in epochs (default 1)\n"
      "  --checkpoint-keep N          snapshots retained: the primary plus\n"
      "                               N-1 epoch-stamped history copies\n"
      "                               (default 1); retention never deletes\n"
      "                               the last known-good snapshot\n"
      "  --checkpoint-on-error P      failed-write policy: fail (default),\n"
      "                               skip (log + keep training), retry\n"
      "                               (re-attempt, then degrade to skip)\n"
      "  --resume                     continue from DIR's newest valid\n"
      "                               snapshot; a corrupt newest snapshot\n"
      "                               falls back to the next older one\n"
      "\n"
      "Fault injection & integrity:\n"
      "  --fault-spec S               e.g. \"crash@1@40,transient@0@12@2,\n"
      "                               straggler@2@30@0.5,corrupt@1@e2,\n"
      "                               hang@0@e3\" (see comm/fault.hpp)\n"
      "  --wire-checksums             FNV-1a payload checksums on every\n"
      "                               collective, even with no --fault-spec\n"
      "  --collective-deadline X      watchdog: a hung collective or a\n"
      "                               straggler stalled past X simulated\n"
      "                               seconds becomes a deterministic rank\n"
      "                               failure (0 = off; required by hang@)\n"
      "  --fault-retry-limit N        retry attempts per collective (4)\n"
      "  --fault-backoff-base X       modeled seconds before first retry\n"
      "  --elastic                    shrink-world recovery from permanent\n"
      "                               rank failures\n"
      "  --max-rank-failures N        cumulative crash budget for --elastic\n"
      "\n"
      "Test hooks (harnesses):\n"
      "  --kill-at-epoch N --kill-mid-write B --kill-in-recovery N\n"
      "  --disk-fault-at-epoch N      fail snapshot writes with ENOSPC\n"
      "                               starting at epoch N\n"
      "  --disk-fault-attempts K      how many writes fail (default 1)\n"
      "\n"
      "Telemetry & output:\n"
      "  --metrics-out F --trace-out F.json --events-out F.jsonl\n"
      "  --save-model F --report F.json\n"
      "\n"
      "Exit codes: 0 success, 1 error, 2 usage, 3 rank failure beyond the\n"
      "recovery budget, 4 (analyze) decision contradicts measurements.\n";
  return 0;
}

int cmd_train(const util::ArgParser& args) {
  if (args.has_flag("help")) return cmd_train_help();
  const kge::Dataset dataset = dataset_from_flags(args);
  std::cout << dataset.summary("dataset") << "\n";

  const std::string trainer = args.get_string("trainer", "distributed");
  if (trainer == "hogwild") {
    return cmd_train_hogwild(args, dataset);
  }
  if (trainer == "federated") {
    return cmd_train_federated(args, dataset);
  }
  if (trainer != "distributed") {
    throw std::invalid_argument(
        "unknown --trainer: " + trainer +
        " (expected distributed|hogwild|federated)");
  }

  core::TrainConfig config;
  config.model_name = args.get_string("model", "complex");
  config.embedding_rank =
      static_cast<std::int32_t>(args.get_int("rank", 32));
  config.num_nodes = static_cast<int>(args.get_int("nodes", 4));
  config.batch_size =
      static_cast<std::size_t>(args.get_int("batch", 1000));
  config.lr.base_lr = args.get_double("lr", 0.01);
  config.lr.tolerance = static_cast<int>(args.get_int("tolerance", 15));
  config.max_epochs = static_cast<int>(args.get_int("max-epochs", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  config.host_threads =
      static_cast<int>(args.get_int("host-threads", 0));  // 0 = all cores
  const int negatives = static_cast<int>(args.get_int("negatives", 4));
  config.strategy = strategy_by_name(
      args.get_string("strategy", "full"), negatives,
      static_cast<int>(args.get_int("ss-sampled", 8)));
  config.strategy.dynamic_probe_interval = static_cast<int>(args.get_int(
      "probe-interval", config.strategy.dynamic_probe_interval));
  apply_selection_flags(args, config.strategy);

  // Fault tolerance: periodic snapshots + resume, injected faults, and
  // elastic shrink-world recovery.
  config.checkpoint.dir = args.get_string("checkpoint-dir", "");
  config.checkpoint.every =
      static_cast<int>(args.get_int("checkpoint-every", 1));
  config.checkpoint.resume = args.get_bool("resume", false);
  config.checkpoint.on_error = args.get_string("checkpoint-on-error", "fail");
  config.checkpoint.keep =
      static_cast<int>(args.get_int("checkpoint-keep", 1));
  config.checkpoint.test_kill_at_epoch =
      static_cast<int>(args.get_int("kill-at-epoch", -1));
  config.checkpoint.test_kill_mid_write = args.get_int("kill-mid-write", -1);
  config.checkpoint.test_disk_fault_at_epoch =
      static_cast<int>(args.get_int("disk-fault-at-epoch", -1));
  config.checkpoint.test_disk_fault_attempts =
      static_cast<int>(args.get_int("disk-fault-attempts", 1));
  config.elastic.enabled = args.get_bool("elastic", false);
  config.elastic.max_rank_failures =
      static_cast<int>(args.get_int("max-rank-failures", 0));
  config.elastic.test_kill_in_recovery =
      static_cast<int>(args.get_int("kill-in-recovery", -1));
  config.fault_retry_limit =
      static_cast<int>(args.get_int("fault-retry-limit", 4));
  config.fault_backoff_base = args.get_double("fault-backoff-base", 1e-3);
  config.collective_deadline = args.get_double("collective-deadline", 0.0);
  std::unique_ptr<comm::FaultInjector> faults;
  const std::string fault_spec = args.get_string("fault-spec", "");
  const bool wire_checksums = args.get_bool("wire-checksums", false);
  // An injector is attached for any fault schedule, for --wire-checksums
  // (empty schedule; arms the per-collective integrity checksums), and
  // for a watchdog deadline with no scheduled faults.
  if ((!fault_spec.empty() || wire_checksums ||
       config.collective_deadline > 0.0) &&
      config.fault_retry_limit >= 1 && config.fault_backoff_base > 0.0 &&
      config.collective_deadline >= 0.0) {
    // Out-of-range knobs skip injector construction (whose own validation
    // cannot name a flag) and let the trainer report the offending flag by
    // name.
    comm::RetryPolicy retry;
    retry.max_attempts = config.fault_retry_limit;
    retry.backoff_seconds = config.fault_backoff_base;
    faults = std::make_unique<comm::FaultInjector>(
        fault_spec.empty() ? std::vector<comm::FaultEvent>{}
                           : comm::FaultInjector::parse_spec(fault_spec),
        retry, config.collective_deadline);
    config.fault_injector = faults.get();
  }

  // Telemetry sinks (src/obs/) — created only when a flag asks for them,
  // so the default train run pays nothing.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceWriter> trace;
  std::unique_ptr<obs::EventLog> events;
  const std::string metrics_path = args.get_string("metrics-out", "");
  const std::string trace_path = args.get_string("trace-out", "");
  const std::string events_path = args.get_string("events-out", "");
  if (!metrics_path.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    config.telemetry.metrics = metrics.get();
  }
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::TraceWriter>();
    config.telemetry.trace = trace.get();
  }
  if (!events_path.empty()) {
    events = std::make_unique<obs::EventLog>(events_path);
    config.telemetry.events = events.get();
  }

  std::cout << "training " << config.strategy.label() << " ("
            << config.model_name << ", rank " << config.embedding_rank
            << ") on " << config.num_nodes << " simulated nodes...\n";
  core::TrainReport report;
  try {
    report = core::DistributedTrainer(dataset, config).train();
  } catch (const comm::RankFailedError& error) {
    // Distinct exit code so harnesses can tell "rank died" from bad flags.
    std::cerr << "dynkge train: " << error.what() << "\n";
    if (faults != nullptr) {
      const auto c = faults->counters();
      std::cerr << "faults: " << c.crashes << " crashes, " << c.transients
                << " transients recovered, " << c.exhausted
                << " retry budgets exhausted\n"
                << "integrity: " << c.corrupted_payloads
                << " corrupted payloads, " << c.corruptions_detected
                << " detected, " << c.retransmits << " retransmits, "
                << c.watchdog_trips << " watchdog trips\n";
    }
    return 3;
  }
  if (report.start_epoch > 0) {
    std::cout << "resumed from epoch " << report.start_epoch << "\n";
  }
  if (report.recoveries > 0) {
    std::cout << "elastic: " << report.recoveries << " recoveries from "
              << report.rank_failures << " rank failures ("
              << report.recovery_seconds << " s rebuilding), finished on "
              << report.num_nodes << " nodes\n";
  }
  if (!config.checkpoint.dir.empty()) {
    std::cout << "checkpoints: " << report.checkpoints_written
              << " written to " << config.checkpoint.dir << "\n";
  }
  if (faults != nullptr) {
    const auto c = faults->counters();
    std::cout << "faults injected: " << c.crashes << " crashes, "
              << c.transients << " transients (" << c.retries
              << " retries, " << c.backoff_seconds << " s backoff), "
              << c.stragglers << " stragglers\n"
              << "integrity: " << c.corrupted_payloads
              << " corrupted payloads, " << c.corruptions_detected
              << " detected, " << c.retransmits << " retransmits, "
              << c.watchdog_trips << " watchdog trips\n";
  }
  std::cout << "epochs: " << report.epochs
            << "  TT(sim): " << report.total_sim_seconds << " s"
            << "  TCA: " << report.tca << " %"
            << "  MRR: " << report.ranking.mrr << "\n"
            << "host: " << report.wall_seconds << " s wall on "
            << report.host_threads << " threads, "
            << report.compute_cpu_seconds << " s rank compute ("
            << report.host_speedup() << "x vs serialized)\n";

  const std::string model_path = args.get_string("save-model", "");
  if (!model_path.empty()) {
    kge::save_model(*report.model, model_path);
    std::cout << "model written to " << model_path << "\n";
  }
  const std::string report_path = args.get_string("report", "");
  if (!report_path.empty()) {
    core::write_report_json(report, report_path, metrics.get());
    std::cout << "report written to " << report_path << "\n";
  }
  if (metrics != nullptr) {
    obs::write_metrics(*metrics, metrics_path);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  if (trace != nullptr) {
    trace->write(trace_path);
    std::cout << "trace written to " << trace_path << " ("
              << trace->size() << " spans; load in Perfetto)\n";
  }
  if (events != nullptr) {
    events->flush();
    std::cout << "events written to " << events_path << " ("
              << events->lines_written() << " lines)\n";
  }
  return 0;
}

// Offline telemetry analysis: join a train run's trace spans with its
// event stream (obs/analysis.hpp) and print the critical-path table plus
// the DRS strategy audit. Exit codes: 0 clean, 2 bad flags, 4 when a
// recorded probe decision contradicts the recorded costs — so CI can gate
// on "the selector never decided against its own measurements".
int cmd_analyze(const util::ArgParser& args) {
  const std::string trace_path = args.get_string("trace", "");
  const std::string events_path = args.get_string("events", "");
  if (trace_path.empty() || events_path.empty()) {
    std::cerr << "analyze: --trace <file.json> and --events <file.jsonl> "
                 "are required\n";
    return 2;
  }
  const auto spans = obs::load_trace_spans(trace_path);
  const auto events = obs::load_events(events_path);
  const obs::AnalysisReport report = obs::analyze(spans, events);

  const std::string text =
      args.get_bool("json", false) ? report.to_json() + "\n"
                                   : report.to_table();
  const std::string out_path = args.get_string("out", "");
  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "analyze: cannot write " << out_path << "\n";
      return 1;
    }
    out << text;
    std::cout << "analysis written to " << out_path << "\n";
  }
  if (report.contradicted_decisions > 0) {
    std::cerr << "analyze: " << report.contradicted_decisions
              << " probe decision(s) contradict the recorded costs\n";
    return 4;
  }
  return 0;
}

int cmd_eval(const util::ArgParser& args) {
  const std::string model_path = args.get_string("model-file", "");
  if (model_path.empty()) {
    std::cerr << "eval: --model-file <file> is required\n";
    return 2;
  }
  const kge::Dataset dataset = dataset_from_flags(args);
  const auto model = kge::load_model(model_path);
  const kge::Evaluator evaluator(dataset);
  kge::EvalOptions options;
  options.max_triples =
      static_cast<std::size_t>(args.get_int("max-triples", 0));
  // --nodes > 1 shards the ranking across a simulated cluster (identical
  // numbers, parallel wall time on multi-core hosts).
  const int nodes = static_cast<int>(args.get_int("nodes", 1));
  const auto metrics =
      nodes > 1 ? core::distributed_link_prediction(*model, dataset,
                                                    dataset.test(), nodes,
                                                    options)
                      .metrics
                : evaluator.link_prediction(*model, dataset.test(), options);
  std::cout << "model: " << model->name() << "\n"
            << "filtered MRR: " << metrics.mrr
            << "  mean rank: " << metrics.mean_rank
            << "  Hits@1/3/10: " << metrics.hits1 << " / " << metrics.hits3
            << " / " << metrics.hits10 << "\n"
            << "TCA: " << evaluator.triple_classification_accuracy(*model)
            << " %\n";
  return 0;
}

int cmd_predict(const util::ArgParser& args) {
  const std::string model_path = args.get_string("model-file", "");
  if (model_path.empty()) {
    std::cerr << "predict: --model-file <file> is required\n";
    return 2;
  }
  const kge::Dataset dataset = dataset_from_flags(args);

  serve::TopKQuery query;
  // --head H predicts tails of (H, r, ?); --tail T predicts heads of
  // (?, r, T). Exactly one side may be given; --head 0 is the default.
  const auto head = args.get_int("head", -1);
  const auto tail = args.get_int("tail", -1);
  if (head >= 0 && tail >= 0) {
    std::cerr << "predict: give either --head or --tail, not both\n";
    return 2;
  }
  query.direction =
      tail >= 0 ? serve::Direction::kHead : serve::Direction::kTail;
  query.entity = static_cast<kge::EntityId>(tail >= 0 ? tail
                                            : head >= 0 ? head
                                                        : 0);
  query.relation = static_cast<kge::RelationId>(args.get_int("relation", 0));
  query.filter_known = args.get_bool("filter", false);

  serve::ServiceConfig config;
  config.num_threads = static_cast<int>(args.get_int("threads", 4));
  serve::InferenceService live(kge::load_model(model_path), &dataset, config);
  if (query.entity >= dataset.num_entities() || query.relation < 0 ||
      query.relation >= dataset.num_relations()) {
    std::cerr << "predict: --head/--tail/--relation out of range\n";
    return 2;
  }
  query.k = std::min<std::int32_t>(
      static_cast<std::int32_t>(args.get_int("topk", 10)),
      dataset.num_entities());

  const auto result = live.topk(query);
  const bool tails = query.direction == serve::Direction::kTail;
  std::cout << "top-" << result->size() << (tails ? " tails for (e" : " heads for (?")
            << (tails ? std::to_string(query.entity) : "")
            << ", r" << query.relation
            << (tails ? ", ?):\n" : ", e" + std::to_string(query.entity) + "):\n");
  for (const auto& [entity, score] : *result) {
    const bool known = tails
                           ? dataset.contains(query.entity, query.relation, entity)
                           : dataset.contains(entity, query.relation, query.entity);
    std::cout << "  e" << entity << "  score " << score
              << (known ? "  [known fact]" : "") << "\n";
  }
  const auto snapshot = live.snapshot();
  std::cout << "served in " << serve::LatencyHistogram::format_seconds(
                                   snapshot.mean_latency_seconds)
            << " on " << live.num_threads() << " threads\n";
  return 0;
}

/// Model for the serving commands: a checkpoint when --model-file is
/// given, otherwise freshly initialized weights (they score garbage but
/// cost exactly the same to serve — fine for throughput work).
std::unique_ptr<kge::KgeModel> serving_model(const util::ArgParser& args,
                                             const kge::Dataset& dataset) {
  const std::string model_path = args.get_string("model-file", "");
  if (!model_path.empty()) return kge::load_model(model_path);
  auto model = kge::make_model(
      args.get_string("model", "complex"), dataset.num_entities(),
      dataset.num_relations(),
      static_cast<std::int32_t>(args.get_int("rank", 32)));
  util::Rng init_rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  model->init(init_rng);
  return model;
}

/// Zipf(1.0)-skewed query stream over `distinct` identities — the
/// popularity profile the cache is designed for.
std::vector<serve::TopKQuery> make_query_stream(const kge::Dataset& dataset,
                                                std::size_t count,
                                                std::size_t distinct,
                                                std::int32_t topk,
                                                std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5e7fe5e7fe5ULL);
  std::vector<serve::TopKQuery> identities(std::max<std::size_t>(1, distinct));
  for (auto& q : identities) {
    q.direction = rng.next_bernoulli(0.5) ? serve::Direction::kTail
                                          : serve::Direction::kHead;
    q.entity = static_cast<kge::EntityId>(
        rng.next_below(static_cast<std::uint64_t>(dataset.num_entities())));
    q.relation = static_cast<kge::RelationId>(
        rng.next_below(static_cast<std::uint64_t>(dataset.num_relations())));
    q.k = std::min<std::int32_t>(topk, dataset.num_entities());
  }
  const util::ZipfSampler skew(identities.size(), 1.0);
  std::vector<serve::TopKQuery> stream(count);
  for (auto& q : stream) q = identities[skew.sample(rng)];
  return stream;
}

/// Synthetic delta triples for churn benchmarks: uniform over the
/// dataset's universe, deterministic in `seed`.
kge::TripleList make_delta_stream(const kge::Dataset& dataset,
                                  std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed ^ 0xde17a5ULL);
  kge::TripleList deltas(count);
  for (auto& t : deltas) {
    t.head = static_cast<kge::EntityId>(
        rng.next_below(static_cast<std::uint64_t>(dataset.num_entities())));
    t.relation = static_cast<kge::RelationId>(
        rng.next_below(static_cast<std::uint64_t>(dataset.num_relations())));
    t.tail = static_cast<kge::EntityId>(
        rng.next_below(static_cast<std::uint64_t>(dataset.num_entities())));
  }
  return deltas;
}

stream::IngestConfig ingest_config_from_flags(const util::ArgParser& args,
                                              const kge::Dataset& dataset) {
  stream::IngestConfig config;
  config.batch_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int("delta-batch", 64)));
  config.refresh.steps =
      static_cast<int>(args.get_int("refresh-steps", 2));
  config.refresh.learning_rate = args.get_double("refresh-lr", 0.05);
  config.refresh.negatives_sampled =
      static_cast<int>(args.get_int("refresh-negatives", 4));
  config.refresh.negatives_used = config.refresh.negatives_sampled;
  config.refresh.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.dataset = &dataset;
  return config;
}

// Serve a model while streaming KG updates into it: concurrent client
// threads replay a Zipf-skewed read stream against versioned snapshots
// while a delta file is ingested, refreshed and hot-swapped in. The
// demo/operational counterpart of `serve-bench --mixed-updates`.
int cmd_serve(const util::ArgParser& args) {
  const std::string updates = args.get_string("stream-updates", "");
  if (updates.empty()) {
    std::cerr << "serve: --stream-updates <file> is required\n";
    return 2;
  }
  if (!updates.empty() &&
      updates.find_first_not_of("0123456789") == std::string::npos) {
    std::cerr << "serve: --stream-updates expects a delta file; listening "
                 "on a port is not supported in this build\n";
    return 2;
  }

  const kge::Dataset dataset = dataset_from_flags(args);
  const auto deltas = stream::load_delta_file(
      updates, dataset.num_entities(), dataset.num_relations());
  std::cout << "serve: " << deltas.triples.size() << " streamed deltas from "
            << updates;
  if (deltas.skipped > 0) {
    std::cout << " (" << deltas.skipped << " out-of-universe lines dropped)";
  }
  std::cout << "\n";

  serve::ServiceConfig config;
  config.num_threads = static_cast<int>(args.get_int("threads", 4));
  config.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 1024));
  config.max_inflight =
      static_cast<std::size_t>(args.get_int("max-inflight", 0));
  config.defer_updates_above = config.max_inflight;
  config.cache_max_version_lag =
      static_cast<std::uint64_t>(args.get_int("max-version-lag", 8));

  // Telemetry sinks, created only when a flag asks for them.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceWriter> trace;
  std::unique_ptr<obs::EventLog> events;
  obs::TelemetrySinks sinks;
  const std::string metrics_path = args.get_string("metrics-out", "");
  const std::string trace_path = args.get_string("trace-out", "");
  const std::string events_path = args.get_string("events-out", "");
  if (!metrics_path.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    config.metrics = metrics.get();
    sinks.metrics = metrics.get();
  }
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::TraceWriter>();
    config.trace = trace.get();
    sinks.trace = trace.get();
  }
  if (!events_path.empty()) {
    events = std::make_unique<obs::EventLog>(events_path);
    sinks.events = events.get();
  }

  serve::InferenceService service(serving_model(args, dataset), &dataset,
                                  config);
  service.store().set_telemetry(sinks);

  stream::IngestConfig ingest = ingest_config_from_flags(args, dataset);
  ingest.admission = &service.admission();
  ingest.telemetry = sinks;
  stream::DeltaIngestor ingestor(service.store(), ingest);

  const auto num_queries =
      static_cast<std::size_t>(args.get_int("queries", 2000));
  const auto stream = make_query_stream(
      dataset, num_queries,
      std::max<std::size_t>(
          1, static_cast<std::size_t>(args.get_int("distinct", 256))),
      static_cast<std::int32_t>(args.get_int("topk", 10)),
      static_cast<std::uint64_t>(args.get_int("seed", 42)));

  const auto clients = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int("clients", 2)));
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};

  const util::Stopwatch clock;
  std::vector<std::thread> readers;
  readers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    readers.emplace_back([&, c] {
      for (std::size_t i = c; i < stream.size(); i += clients) {
        const auto result = service.topk(stream[i]);
        if (result != nullptr) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else if (config.max_inflight != 0) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Ingest on this thread, concurrently with the readers: submit() flushes
  // (refresh + publish) inline every batch_size deltas.
  for (const kge::Triple& t : deltas.triples) ingestor.submit(t);
  ingestor.flush();
  for (auto& reader : readers) reader.join();
  const double wall = clock.seconds();

  const auto snapshot = service.snapshot();
  const auto ingest_stats = ingestor.stats();
  std::cout << "served " << answered.load() << "/" << stream.size()
            << " queries on " << clients << " clients in "
            << serve::LatencyHistogram::format_seconds(wall) << " ("
            << static_cast<std::uint64_t>(
                   static_cast<double>(answered.load()) / wall)
            << " qps), " << shed.load() << " shed, " << failed.load()
            << " failed\n"
            << "latency: " << snapshot.summary() << "\n"
            << "stream: " << ingest_stats.batches << " refreshes -> version "
            << service.current_version() << ", "
            << ingest_stats.touched_rows << " rows touched, last drift "
            << ingest_stats.last_drift << ", cache invalidations "
            << snapshot.cache.invalidations << " ("
            << snapshot.cache.invalidated_entries << " entries)\n";

  if (metrics != nullptr) {
    obs::write_metrics(*metrics, metrics_path);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  if (trace != nullptr) {
    trace->write(trace_path);
    std::cout << "trace written to " << trace_path << " ("
              << trace->size() << " spans)\n";
  }
  if (events != nullptr) {
    events->flush();
    std::cout << "events written to " << events_path << " ("
              << events->lines_written() << " lines)\n";
  }
  return failed.load() == 0 ? 0 : 1;
}

// Replay a skewed synthetic query stream through InferenceService and
// compare against the pre-serve inference path: one query at a time, one
// thread, full score_all_* scan + partial_sort, no cache.
int cmd_serve_bench(const util::ArgParser& args) {
  const kge::Dataset dataset = dataset_from_flags(args);

  std::unique_ptr<kge::KgeModel> model = serving_model(args, dataset);
  const kge::KgeModel& m = *model;

  const auto num_queries =
      static_cast<std::size_t>(args.get_int("queries", 2000));
  const auto num_distinct = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int("distinct", 256)));
  const auto topk = static_cast<std::int32_t>(args.get_int("topk", 10));
  const auto batch = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int("batch", 32)));

  serve::ServiceConfig config;
  config.num_threads = static_cast<int>(args.get_int("threads", 4));
  config.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 1024));
  const std::string metrics_path = args.get_string("metrics-out", "");
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (!metrics_path.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    config.metrics = metrics.get();
  }

  const auto stream = make_query_stream(
      dataset, num_queries, num_distinct, topk,
      static_cast<std::uint64_t>(args.get_int("seed", 42)));

  std::cout << "serve-bench: " << num_queries << " queries ("
            << num_distinct << " distinct, Zipf-skewed), top-" << topk
            << ", model " << m.name() << ", " << dataset.num_entities()
            << " entities\n";

  // Baseline: the old `dynkge predict` path over a slice of the stream.
  const auto baseline_n =
      std::min<std::size_t>(stream.size(),
                            static_cast<std::size_t>(
                                args.get_int("baseline-queries", 64)));
  std::vector<double> scores(static_cast<std::size_t>(m.num_entities()));
  std::vector<kge::EntityId> order(scores.size());
  util::Stopwatch baseline_clock;
  for (std::size_t i = 0; i < baseline_n; ++i) {
    const auto& q = stream[i];
    if (q.direction == serve::Direction::kTail) {
      m.score_all_tails(q.entity, q.relation, scores);
    } else {
      m.score_all_heads(q.relation, q.entity, scores);
    }
    for (std::size_t e = 0; e < order.size(); ++e) {
      order[e] = static_cast<kge::EntityId>(e);
    }
    std::partial_sort(order.begin(), order.begin() + q.k, order.end(),
                      [&](kge::EntityId a, kge::EntityId b) {
                        return scores[a] > scores[b];
                      });
  }
  const double baseline_seconds = baseline_clock.seconds();
  const double baseline_qps =
      static_cast<double>(baseline_n) / baseline_seconds;
  std::cout << "baseline (single-thread full scan, no cache): "
            << baseline_n << " queries in "
            << serve::LatencyHistogram::format_seconds(baseline_seconds)
            << "  ->  " << static_cast<std::uint64_t>(baseline_qps)
            << " qps\n";

  // Serve the same stream: warmup pass fills the cache, measured pass is
  // the steady state a long-running service converges to.
  serve::InferenceService service(std::move(model), &dataset, config);
  for (std::size_t begin = 0; begin < stream.size(); begin += batch) {
    const auto end = std::min(stream.size(), begin + batch);
    service.topk_batch(std::span(stream).subspan(begin, end - begin));
  }
  service.reset_metrics();

  util::Stopwatch serve_clock;
  for (std::size_t begin = 0; begin < stream.size(); begin += batch) {
    const auto end = std::min(stream.size(), begin + batch);
    service.topk_batch(std::span(stream).subspan(begin, end - begin));
  }
  const double serve_seconds = serve_clock.seconds();
  const double serve_qps =
      static_cast<double>(stream.size()) / serve_seconds;

  const auto steady = service.snapshot();
  std::cout << "service (" << service.num_threads() << " threads, cache "
            << config.cache_capacity << ", batch " << batch << "): "
            << stream.size() << " queries in "
            << serve::LatencyHistogram::format_seconds(serve_seconds)
            << "  ->  " << static_cast<std::uint64_t>(serve_qps) << " qps\n"
            << "latency: " << steady.summary() << "\n"
            << "speedup over single-query scan: "
            << (serve_qps / baseline_qps) << "x\n";

  // Churn phase (--mixed-updates N): replay the read stream again while N
  // synthetic deltas are refreshed and hot-swapped in from another thread.
  // The zero-downtime claim is checked directly: every read slot must come
  // back non-null (no request may fail because a publish was in flight).
  const auto mixed_updates =
      static_cast<std::size_t>(args.get_int("mixed-updates", 0));
  double churn_qps = 0.0;
  std::uint64_t churn_failed = 0;
  std::uint64_t churn_versions = 0;
  serve::ServiceSnapshot churn;
  if (mixed_updates > 0) {
    const auto deltas = make_delta_stream(
        dataset, mixed_updates,
        static_cast<std::uint64_t>(args.get_int("seed", 42)));
    stream::IngestConfig ingest = ingest_config_from_flags(args, dataset);
    ingest.admission = &service.admission();
    stream::DeltaIngestor ingestor(service.store(), ingest);

    service.reset_metrics();
    const std::uint64_t version_before = service.current_version();
    util::Stopwatch churn_clock;
    std::thread updater([&] {
      for (const kge::Triple& t : deltas) ingestor.submit(t);
      ingestor.flush();
    });
    for (std::size_t begin = 0; begin < stream.size(); begin += batch) {
      const auto end = std::min(stream.size(), begin + batch);
      const auto results =
          service.topk_batch(std::span(stream).subspan(begin, end - begin));
      for (const auto& result : results) churn_failed += result == nullptr;
    }
    updater.join();
    const double churn_seconds = churn_clock.seconds();
    churn_qps = static_cast<double>(stream.size()) / churn_seconds;
    churn = service.snapshot();
    churn_versions = service.current_version() - version_before;
    std::cout << "churn (" << mixed_updates << " deltas, batch "
              << ingest.batch_size << "): " << stream.size()
              << " queries in "
              << serve::LatencyHistogram::format_seconds(churn_seconds)
              << "  ->  " << static_cast<std::uint64_t>(churn_qps)
              << " qps, " << churn_versions << " versions published, "
              << churn_failed << " failed requests\n"
              << "latency under churn: " << churn.summary() << "\n";
  }

  const std::string bench_json = args.get_string("bench-json", "");
  if (!bench_json.empty()) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("bench", "serve");
    json.kv("queries", stream.size());
    json.kv("distinct", num_distinct);
    json.kv("batch", batch);
    json.kv("threads", service.num_threads());
    json.kv("cache_capacity", config.cache_capacity);
    json.kv("baseline_scan_qps", baseline_qps);
    json.key("steady").begin_object();
    json.kv("qps", serve_qps);
    json.kv("p50_seconds", steady.p50_seconds);
    json.kv("p95_seconds", steady.p95_seconds);
    json.kv("p99_seconds", steady.p99_seconds);
    json.kv("cache_hit_rate", steady.cache.hit_rate());
    json.end_object();
    if (mixed_updates > 0) {
      json.key("churn").begin_object();
      json.kv("deltas", mixed_updates);
      json.kv("qps", churn_qps);
      json.kv("p99_seconds", churn.p99_seconds);
      json.kv("versions_published", churn_versions);
      json.kv("failed_requests", churn_failed);
      json.kv("shed", churn.shed);
      json.kv("cache_invalidations", churn.cache.invalidations);
      json.kv("cache_invalidated_entries", churn.cache.invalidated_entries);
      json.end_object();
    }
    json.end_object();
    std::ofstream out(bench_json);
    if (!out) {
      std::cerr << "serve-bench: cannot write " << bench_json << "\n";
      return 1;
    }
    out << json.str() << "\n";
    std::cout << "bench results written to " << bench_json << "\n";
  }

  if (metrics != nullptr) {
    obs::write_metrics(*metrics, metrics_path);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  return churn_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const util::ArgParser args(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "train") return cmd_train(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "serve-bench") return cmd_serve_bench(args);
  } catch (const std::exception& error) {
    std::cerr << "dynkge " << command << ": " << error.what() << "\n";
    return 1;
  }
  return usage();
}
