// dynkge — command-line interface to the library.
//
//   dynkge generate --preset fb15k_mini --out <dir>        write a synthetic
//                                                          dataset (OpenKE)
//   dynkge stats    --data <dir>                           dataset report
//   dynkge train    --data <dir> | --preset <name>         train a model
//                   [--strategy allreduce|allgather|ps|rs|rs1bit|drs|
//                    drs1bit|full] [--nodes N] [--rank N] [--batch N]
//                   [--lr X] [--tolerance N] [--max-epochs N] [--seed N]
//                   [--model complex|distmult|transe]
//                   [--save-model file] [--report file.json]
//   dynkge eval     --data <dir> --model-file <file>       evaluate a saved
//                                                          model
//   dynkge predict  --data <dir> --model-file <file>       top-k tails for
//                   --head H --relation R [--topk K]       a query
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/distributed_eval.hpp"
#include "core/hogwild_trainer.hpp"
#include "core/report_json.hpp"
#include "core/strategy_config.hpp"
#include "core/trainer.hpp"
#include "kge/serialize.hpp"
#include "kge/statistics.hpp"
#include "kge/synthetic.hpp"
#include "kge/tsv_loader.hpp"
#include "util/argparse.hpp"

using namespace dynkge;

namespace {

int usage() {
  std::cerr << "usage: dynkge <generate|stats|train|eval|predict> "
               "[--flags]\n(see the header of tools/dynkge_cli.cpp)\n";
  return 2;
}

kge::SyntheticSpec preset_by_name(const std::string& name) {
  if (name == "fb15k_mini") return kge::SyntheticSpec::fb15k_mini();
  if (name == "fb15k_full") return kge::SyntheticSpec::fb15k_full();
  if (name == "fb250k_mini") return kge::SyntheticSpec::fb250k_mini();
  if (name == "fb250k_full") return kge::SyntheticSpec::fb250k_full();
  throw std::invalid_argument("unknown preset: " + name +
                              " (expected fb15k_mini|fb15k_full|"
                              "fb250k_mini|fb250k_full)");
}

kge::Dataset dataset_from_flags(const util::ArgParser& args) {
  const std::string data_dir = args.get_string("data", "");
  if (!data_dir.empty()) return kge::load_dataset(data_dir);
  return kge::generate_synthetic(
      preset_by_name(args.get_string("preset", "fb15k_mini")));
}

core::StrategyConfig strategy_by_name(const std::string& name,
                                      int negatives, int ss_sampled) {
  if (name == "allreduce") {
    return core::StrategyConfig::baseline_allreduce(negatives);
  }
  if (name == "allgather") {
    return core::StrategyConfig::baseline_allgather(negatives);
  }
  if (name == "ps" || name == "param-server") {
    return core::StrategyConfig::baseline_parameter_server(negatives);
  }
  if (name == "rs") return core::StrategyConfig::rs(negatives);
  if (name == "drs") return core::StrategyConfig::drs(negatives);
  if (name == "rs1bit") return core::StrategyConfig::rs_1bit(negatives);
  if (name == "drs1bit") return core::StrategyConfig::drs_1bit(negatives);
  if (name == "full") {
    return core::StrategyConfig::drs_1bit_rp_ss(ss_sampled, 1);
  }
  throw std::invalid_argument("unknown strategy: " + name);
}

int cmd_generate(const util::ArgParser& args) {
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out <dir> is required\n";
    return 2;
  }
  kge::SyntheticSpec spec =
      preset_by_name(args.get_string("preset", "fb15k_mini"));
  spec.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(spec.seed)));
  const kge::Dataset dataset = kge::generate_synthetic(spec);
  kge::save_openke(dataset, out);
  std::cout << dataset.summary("generated") << "\nwritten to " << out
            << " (OpenKE layout)\n";
  return 0;
}

int cmd_stats(const util::ArgParser& args) {
  const kge::Dataset dataset = dataset_from_flags(args);
  std::cout << dataset.summary("dataset") << "\n"
            << kge::compute_statistics(dataset).summary() << "\n";
  return 0;
}

int cmd_train_hogwild(const util::ArgParser& args,
                      const kge::Dataset& dataset) {
  core::HogwildConfig config;
  config.model_name = args.get_string("model", "complex");
  config.embedding_rank =
      static_cast<std::int32_t>(args.get_int("rank", 32));
  config.num_threads = static_cast<int>(args.get_int("nodes", 4));
  config.negatives = static_cast<int>(args.get_int("negatives", 4));
  config.lr.base_lr = args.get_double("lr", 0.05);
  config.lr.max_scale = 1;
  config.lr.tolerance = static_cast<int>(args.get_int("tolerance", 15));
  config.max_epochs = static_cast<int>(args.get_int("max-epochs", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));

  std::cout << "training hogwild (" << config.model_name << ", rank "
            << config.embedding_rank << ") on " << config.num_threads
            << " shared-memory threads...\n";
  const auto report = core::HogwildTrainer(dataset, config).train();
  std::cout << "epochs: " << report.epochs
            << "  cpu: " << report.total_cpu_seconds << " s"
            << "  TCA: " << report.tca << " %"
            << "  MRR: " << report.ranking.mrr << "\n";
  const std::string model_path = args.get_string("save-model", "");
  if (!model_path.empty()) {
    kge::save_model(*report.model, model_path);
    std::cout << "model written to " << model_path << "\n";
  }
  return 0;
}

int cmd_train(const util::ArgParser& args) {
  const kge::Dataset dataset = dataset_from_flags(args);
  std::cout << dataset.summary("dataset") << "\n";

  if (args.get_string("trainer", "distributed") == "hogwild") {
    return cmd_train_hogwild(args, dataset);
  }

  core::TrainConfig config;
  config.model_name = args.get_string("model", "complex");
  config.embedding_rank =
      static_cast<std::int32_t>(args.get_int("rank", 32));
  config.num_nodes = static_cast<int>(args.get_int("nodes", 4));
  config.batch_size =
      static_cast<std::size_t>(args.get_int("batch", 1000));
  config.lr.base_lr = args.get_double("lr", 0.01);
  config.lr.tolerance = static_cast<int>(args.get_int("tolerance", 15));
  config.max_epochs = static_cast<int>(args.get_int("max-epochs", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  const int negatives = static_cast<int>(args.get_int("negatives", 4));
  config.strategy = strategy_by_name(
      args.get_string("strategy", "full"), negatives,
      static_cast<int>(args.get_int("ss-sampled", 8)));

  std::cout << "training " << config.strategy.label() << " ("
            << config.model_name << ", rank " << config.embedding_rank
            << ") on " << config.num_nodes << " simulated nodes...\n";
  const auto report = core::DistributedTrainer(dataset, config).train();
  std::cout << "epochs: " << report.epochs
            << "  TT(sim): " << report.total_sim_seconds << " s"
            << "  TCA: " << report.tca << " %"
            << "  MRR: " << report.ranking.mrr << "\n";

  const std::string model_path = args.get_string("save-model", "");
  if (!model_path.empty()) {
    kge::save_model(*report.model, model_path);
    std::cout << "model written to " << model_path << "\n";
  }
  const std::string report_path = args.get_string("report", "");
  if (!report_path.empty()) {
    core::write_report_json(report, report_path);
    std::cout << "report written to " << report_path << "\n";
  }
  return 0;
}

int cmd_eval(const util::ArgParser& args) {
  const std::string model_path = args.get_string("model-file", "");
  if (model_path.empty()) {
    std::cerr << "eval: --model-file <file> is required\n";
    return 2;
  }
  const kge::Dataset dataset = dataset_from_flags(args);
  const auto model = kge::load_model(model_path);
  const kge::Evaluator evaluator(dataset);
  kge::EvalOptions options;
  options.max_triples =
      static_cast<std::size_t>(args.get_int("max-triples", 0));
  // --nodes > 1 shards the ranking across a simulated cluster (identical
  // numbers, parallel wall time on multi-core hosts).
  const int nodes = static_cast<int>(args.get_int("nodes", 1));
  const auto metrics =
      nodes > 1 ? core::distributed_link_prediction(*model, dataset,
                                                    dataset.test(), nodes,
                                                    options)
                      .metrics
                : evaluator.link_prediction(*model, dataset.test(), options);
  std::cout << "model: " << model->name() << "\n"
            << "filtered MRR: " << metrics.mrr
            << "  mean rank: " << metrics.mean_rank
            << "  Hits@1/3/10: " << metrics.hits1 << " / " << metrics.hits3
            << " / " << metrics.hits10 << "\n"
            << "TCA: " << evaluator.triple_classification_accuracy(*model)
            << " %\n";
  return 0;
}

int cmd_predict(const util::ArgParser& args) {
  const std::string model_path = args.get_string("model-file", "");
  if (model_path.empty()) {
    std::cerr << "predict: --model-file <file> is required\n";
    return 2;
  }
  const kge::Dataset dataset = dataset_from_flags(args);
  const auto model = kge::load_model(model_path);
  const auto head = static_cast<kge::EntityId>(args.get_int("head", 0));
  const auto relation =
      static_cast<kge::RelationId>(args.get_int("relation", 0));
  const int topk = static_cast<int>(args.get_int("topk", 10));
  if (head < 0 || head >= dataset.num_entities() || relation < 0 ||
      relation >= dataset.num_relations()) {
    std::cerr << "predict: --head/--relation out of range\n";
    return 2;
  }

  std::vector<double> scores(model->num_entities());
  model->score_all_tails(head, relation, scores);
  std::vector<kge::EntityId> order(model->num_entities());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<kge::EntityId>(i);
  }
  const int k = std::min<int>(topk, static_cast<int>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](kge::EntityId a, kge::EntityId b) {
                      return scores[a] > scores[b];
                    });
  std::cout << "top-" << k << " tails for (e" << head << ", r" << relation
            << ", ?):\n";
  for (int i = 0; i < k; ++i) {
    std::cout << "  e" << order[i] << "  score " << scores[order[i]]
              << (dataset.contains(head, relation, order[i])
                      ? "  [known fact]"
                      : "")
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const util::ArgParser args(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "train") return cmd_train(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "predict") return cmd_predict(args);
  } catch (const std::exception& error) {
    std::cerr << "dynkge " << command << ": " << error.what() << "\n";
    return 1;
  }
  return usage();
}
