#!/usr/bin/env python3
"""Validate the telemetry artifacts a `dynkge train` run writes.

Checks, per artifact:
  --metrics  metrics snapshot: parseable (JSON, or Prometheus text for
             .prom), non-empty, train.steps/train.epochs present and > 0.
  --trace    Chrome trace-event JSON: loadable, only "X"/"M" events, every
             complete event carries name/pid/tid/ts/dur, spans on each tid
             are properly nested (a rank track is one sequential program),
             rank tracks are labeled.
  --events   JSONL event stream: every line parses, carries the full
             schema, and there is exactly one event per (epoch, rank) for
             --expect-ranks x --expect-epochs.

Exits non-zero with a message on the first violation, so CI fails loudly.

Usage:
  check_telemetry.py --metrics m.json --trace t.json --events e.jsonl \
      --expect-ranks 2 --expect-epochs 3
"""

import argparse
import json
import sys

# Telemetry schema versions this checker understands. Artifacts stamped
# with any other version are rejected outright (a renamed field would
# otherwise be misread as missing); artifacts without the stamp predate
# versioning and are accepted.
KNOWN_SCHEMA_VERSIONS = (1,)

EVENT_KEYS = frozenset(
    [
        "schema_version",
        "epoch",
        "rank",
        "comm_mode",
        "transport",
        "probe",
        "probe_baseline_seconds",
        "switched_to_allgather",
        "selection",
        "keep_rate",
        "quant",
        "bytes_on_wire",
        "ss_candidates_scored",
        "ss_candidates_kept",
        "loss",
        "lr",
        "val_accuracy",
        "sim_seconds",
        "comm_seconds",
    ]
)


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_schema_version(obj, where):
    version = obj.get("schema_version")
    if version is not None and version not in KNOWN_SCHEMA_VERSIONS:
        fail(
            f"{where}: unknown schema_version {version!r} "
            f"(known: {list(KNOWN_SCHEMA_VERSIONS)})"
        )


def check_metrics(path):
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".prom"):
        lines = [l for l in text.splitlines() if l.strip()]
        if not lines:
            fail(f"{path}: empty Prometheus snapshot")
        types = {}
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                types[name] = kind
                continue
            if line.startswith("#"):
                continue
            fields = line.rsplit(" ", 1)
            if len(fields) != 2:
                fail(f"{path}: malformed sample line: {line!r}")
            float(fields[1])  # every sample value must be numeric
        if "dynkge_train_steps" not in types:
            fail(f"{path}: missing dynkge_train_steps")
        print(f"  metrics: {len(types)} metric families ({path})")
        return
    snapshot = json.loads(text)
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            fail(f"{path}: missing section {section!r}")
    counters = snapshot["counters"]
    for required in ("train.steps", "train.epochs"):
        if counters.get(required, 0) <= 0:
            fail(f"{path}: counter {required!r} missing or zero")
    print(
        f"  metrics: {len(counters)} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms ({path})"
    )


def check_trace(path, expect_ranks):
    with open(path) as handle:
        trace = json.load(handle)
    check_schema_version(trace, path)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")

    named_tids = set()
    spans_by_tid = {}
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") != "thread_name":
                fail(f"{path}: unexpected metadata event {event!r}")
            named_tids.add(event["tid"])
            continue
        if phase != "X":
            fail(f"{path}: unexpected event phase {phase!r}")
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{path}: complete event missing {key!r}: {event!r}")
        if event["dur"] < 0:
            fail(f"{path}: negative duration: {event!r}")
        spans_by_tid.setdefault(event["tid"], []).append(event)

    for rank in range(expect_ranks):
        if rank not in named_tids:
            fail(f"{path}: rank track {rank} has no thread_name metadata")
        if rank not in spans_by_tid:
            fail(f"{path}: rank track {rank} recorded no spans")

    # Each tid is one sequential program: spans must be properly nested
    # (disjoint or contained), never partially overlapping.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s["ts"], -s["dur"]))
        open_ends = []
        for span in spans:
            end = span["ts"] + span["dur"]
            while open_ends and open_ends[-1] <= span["ts"]:
                open_ends.pop()
            if open_ends and end > open_ends[-1]:
                fail(
                    f"{path}: span {span['name']!r} on tid {tid} partially "
                    f"overlaps its enclosing span"
                )
            open_ends.append(end)
    total = sum(len(s) for s in spans_by_tid.values())
    print(f"  trace: {total} spans on {len(spans_by_tid)} tracks ({path})")


def check_events(path, expect_ranks, expect_epochs):
    seen = set()
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{path}:{number}: not valid JSON: {error}")
            check_schema_version(event, f"{path}:{number}")
            missing = EVENT_KEYS - event.keys()
            if missing:
                fail(f"{path}:{number}: missing keys {sorted(missing)}")
            key = (event["epoch"], event["rank"])
            if key in seen:
                fail(f"{path}:{number}: duplicate event for {key}")
            seen.add(key)
            if not 0.0 <= event["keep_rate"] <= 1.0:
                fail(f"{path}:{number}: keep_rate out of [0,1]")
            if event["probe"] and event["transport"] != "allgather":
                fail(f"{path}:{number}: probe epoch not on allgather")
    expected = {
        (epoch, rank)
        for epoch in range(expect_epochs)
        for rank in range(expect_ranks)
    }
    if seen != expected:
        fail(
            f"{path}: expected one event per (epoch, rank) for "
            f"{expect_epochs} epochs x {expect_ranks} ranks, got "
            f"{len(seen)} events"
        )
    print(f"  events: {len(seen)} events, schema OK ({path})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics snapshot (.json or .prom)")
    parser.add_argument("--trace", help="Chrome trace-event JSON")
    parser.add_argument("--events", help="JSONL event stream")
    parser.add_argument("--expect-ranks", type=int, default=2)
    parser.add_argument("--expect-epochs", type=int, default=3)
    args = parser.parse_args()
    if not (args.metrics or args.trace or args.events):
        parser.error("give at least one of --metrics/--trace/--events")

    if args.metrics:
        check_metrics(args.metrics)
    if args.trace:
        check_trace(args.trace, args.expect_ranks)
    if args.events:
        check_events(args.events, args.expect_ranks, args.expect_epochs)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
