#!/usr/bin/env python3
"""Chaos soak for the dynkge integrity & degradation layer.

Drives the real CLI binary through a composed-fault matrix and checks the
end-to-end robustness contracts:

  1. armed checksums are free — a --wire-checksums run is byte-identical
     to a plain run (the integrity layer charges zero simulated seconds),
  2. recoverable chaos preserves determinism — corruption + transients +
     sub-deadline stragglers end byte-identical to the fault-free run,
  3. zero silent corruption — the CLI's integrity summary must balance:
     every corrupted payload was detected,
  4. hangs degrade, not deadlock — a hung collective under
     --collective-deadline becomes a rank failure that --elastic absorbs
     (exit 0, world shrinks),
  5. persistent corruption escalates — past the retry budget the run
     exits with the rank-failed status (3), never silently continues,
  6. a failing disk degrades, not kills — --checkpoint-on-error skip
     finishes training and --resume picks the prior good snapshot,
  7. the full storm at 4 ranks — corrupt + transient + hang + disk fault
     in one elastic run, finishing clean with balanced integrity books.

Usage: chaos_soak.py <dynkge-binary> <data-dir> <work-dir>
"""

import pathlib
import re
import shutil
import subprocess
import sys

TIMEOUT_SECONDS = 600  # a hang that actually blocks becomes a failure
RANK_FAILED_EXIT = 3


def run(cmd, expect=0):
    """Run a CLI invocation; returncode must be in `expect` (int or tuple)."""
    print("+", " ".join(str(c) for c in cmd), flush=True)
    proc = subprocess.run(
        [str(c) for c in cmd],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=TIMEOUT_SECONDS,
    )
    text = proc.stdout.decode(errors="replace")
    print(text, flush=True)
    codes = expect if isinstance(expect, tuple) else (expect,)
    if proc.returncode not in codes:
        sys.exit(
            f"FAIL: expected exit in {codes}, got {proc.returncode}: {cmd}"
        )
    return text


def expect_same_bytes(a, b, what):
    if pathlib.Path(a).read_bytes() != pathlib.Path(b).read_bytes():
        sys.exit(f"FAIL: {what}: {a} and {b} differ")
    print(f"ok: {what}: byte-identical", flush=True)


def integrity_counters(text, what):
    """Parse the CLI's integrity summary and enforce corrupted == detected."""
    match = re.search(
        r"integrity: (\d+) corrupted payloads, (\d+) detected, "
        r"(\d+) retransmits, (\d+) watchdog trips",
        text,
    )
    if match is None:
        sys.exit(f"FAIL: {what}: no integrity summary in CLI output")
    corrupted, detected, retransmits, trips = map(int, match.groups())
    if corrupted != detected:
        sys.exit(
            f"FAIL: {what}: SILENT CORRUPTION — {corrupted} payloads "
            f"corrupted but only {detected} detected"
        )
    print(
        f"ok: {what}: integrity books balance "
        f"({corrupted} corrupted == {detected} detected)",
        flush=True,
    )
    return corrupted, detected, retransmits, trips


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    binary, data, work = sys.argv[1:]
    work = pathlib.Path(work)
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)

    base = [
        binary, "train", "--data", data, "--strategy", "drs1bit",
        "--nodes", "4", "--rank", "8", "--batch", "500",
        "--max-epochs", "4", "--tolerance", "3", "--seed", "7",
    ]

    # 1. Fault-free reference, then the same run with checksums armed.
    reference = work / "reference.dkge"
    run(base + ["--save-model", reference])
    wired = work / "wired.dkge"
    out = run(base + ["--wire-checksums", "--save-model", wired])
    integrity_counters(out, "wire-checksums")
    expect_same_bytes(reference, wired, "checksums armed vs plain")

    # 2+3. Recoverable chaos: corruption on two ranks, a transient, and a
    # straggler well under the deadline. Byte-identity must survive it all
    # (recovered faults charge nothing to the simulated clock).
    chaotic = work / "chaotic.dkge"
    out = run(base + [
        "--fault-spec",
        "corrupt@1@e0@2,corrupt@2@e2,transient@0@e1@2,straggler@3@e1@1e-6",
        "--collective-deadline", "100",
        "--save-model", chaotic,
    ])
    corrupted, _, retransmits, trips = integrity_counters(
        out, "recoverable chaos")
    if corrupted != 3 or retransmits != 3:
        sys.exit(f"FAIL: expected 3 corruptions/3 retransmits, got "
                 f"{corrupted}/{retransmits}")
    if trips != 0:
        sys.exit("FAIL: sub-deadline straggler tripped the watchdog")
    expect_same_bytes(reference, chaotic, "recoverable chaos vs plain")

    # 4. A hang under the deadline watchdog + elastic: the rank dies
    # deterministically, the world shrinks, the run exits 0.
    out = run(base + [
        "--fault-spec", "hang@2@e1", "--collective-deadline", "5",
        "--elastic", "--max-rank-failures", "1",
    ])
    if "1 recoveries" not in out:
        sys.exit("FAIL: hang was not absorbed by elastic recovery")
    _, _, _, trips = integrity_counters(out, "hang watchdog")
    if trips != 1:
        sys.exit(f"FAIL: expected 1 watchdog trip, got {trips}")

    # 5. Corruption persisting past the retry budget escalates to the
    # rank-failed exit status; the books must still balance.
    out = run(base + [
        "--fault-spec", "corrupt@1@e1@9", "--fault-retry-limit", "3",
    ], expect=RANK_FAILED_EXIT)
    if "corrupted payload" not in out:
        sys.exit("FAIL: escalation did not name the corrupted payload")
    integrity_counters(out, "escalation")

    # 6. Disk full at the last epoch under skip: training finishes
    # byte-identical; --resume then picks the prior good snapshot.
    ckpt = work / "ckpt_disk"
    degraded = work / "degraded.dkge"
    out = run(base + [
        "--checkpoint-dir", ckpt, "--checkpoint-keep", "3",
        "--checkpoint-on-error", "skip", "--disk-fault-at-epoch", "3",
        "--save-model", degraded,
    ])
    if "checkpoint write failed" not in out:
        sys.exit("FAIL: disk-fault run did not log the failed write")
    expect_same_bytes(reference, degraded, "disk fault under skip")
    resumed = work / "resumed.dkge"
    out = run(base + ["--checkpoint-dir", ckpt, "--resume",
                      "--save-model", resumed])
    if "resumed from epoch 3" not in out:
        sys.exit("FAIL: resume did not pick the prior good snapshot")
    expect_same_bytes(reference, resumed, "resume after disk fault")

    # 7. The full storm: corrupt + transient + hang + disk fault in one
    # 4-rank elastic run with history retention.
    ckpt2 = work / "ckpt_storm"
    out = run(base + [
        "--fault-spec", "corrupt@0@e0@2,transient@1@e1,hang@3@e2",
        "--collective-deadline", "5",
        "--elastic", "--max-rank-failures", "1",
        "--checkpoint-dir", ckpt2, "--checkpoint-keep", "2",
        "--checkpoint-on-error", "skip", "--disk-fault-at-epoch", "1",
        "--events-out", work / "storm_events.jsonl",
    ])
    if "1 recoveries" not in out:
        sys.exit("FAIL: storm run did not recover from the hang")
    integrity_counters(out, "full storm")

    print("PASS: chaos soak contract holds")


if __name__ == "__main__":
    main()
