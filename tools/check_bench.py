#!/usr/bin/env python3
"""Gate bench results against a committed baseline.

Usage:
    tools/check_bench.py BENCH_<name>.json [baseline.json] [--tolerance 0.10]
    tools/check_bench.py BENCH_<name>.json --update-baseline

Reads the uniform JSON block written by any bench binary's --bench-json
flag (bench/harness BenchReporter, plus the legacy serve/train layouts)
and compares the gated metrics against the committed baseline. The gate
set is selected by the result's "bench" field ("serve" when absent, for
older baselines). When the baseline path is omitted it defaults to
bench/baselines/BENCH_<bench>.baseline.json next to this script's repo.

--update-baseline rewrites that baseline from the current results (pretty-
printed, sorted keys) instead of checking, so refreshing a gate after an
intentional perf change is one command.

Exit codes (distinct so CI failures are self-explanatory):
    0  every gate held
    1  malformed input: unreadable/invalid JSON, unknown bench kind,
       bench-kind mismatch, or unsupported schema_version
    2  a gated metric is missing from the current results (the bench
       stopped emitting it -- usually a rename or a dropped sweep point)
    3  a metric is out of its gate (a real regression)

Gate design: four directions.
    exact    current == baseline. In-run-computed booleans/integers and
             pure cost-model arithmetic: platform-independent, so any
             difference is a logic change.
    near     |current - baseline| <= tol * max(|baseline|, 1e-12).
             Deterministic floats (loss/TCA/MRR/modeled comm seconds):
             bit-stable for a fixed seed on one platform, but libm
             differences across runner images move them slightly; the
             tight band still catches real regressions. Epoch counts also
             gate "near": a libm nudge near a plateau boundary can shift
             convergence by an epoch or two, a regression shifts it far.
    higher   current >= baseline * (1 - tol). Throughputs.
    lower    current <= baseline * (1 + tol). Timings: wide tolerances,
             shared CI runners jitter by integer factors; the gate should
             catch "10x slower", not scheduler noise.
    ceiling  current <= tol (absolute bound, baseline ignored). Claims
             with a paper-level constant, e.g. telemetry overhead < 2%.

Metric names may contain dots ("n2.allreduce.tt_sim_seconds" lives under
"metrics.gauges"), so gate paths resolve greedily: at every level the
longest dotted prefix that is a literal key wins, with backtracking.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "bench" / "baselines"

# BENCH_*.json layouts this checker understands (absent -> legacy v0).
KNOWN_SCHEMA_VERSIONS = (1,)

NEAR_DEFAULT = 0.05  # relative band for "near" gates
TIMING_TOL = 9.0     # wide band for sim/wall timing gates
EPOCH_TOL = 0.25     # "near" band for convergence epoch counts


def g(name, direction="near", tol=None):
    """Gauge metric gate (BenchReporter layout)."""
    return (f"metrics.gauges.{name}", direction, tol)


def c(name, direction="exact", tol=None):
    """Counter metric gate (BenchReporter layout)."""
    return (f"metrics.counters.{name}", direction, tol)


def f(name):
    """Boolean flag gate (BenchReporter layout) -- always exact."""
    return (f"flags.{name}", "exact", None)


def training_run_gates(key, with_tca=True, with_mrr=True, with_tt=True):
    """Standard gate block for one seeded training run under `key`."""
    gates = [c(f"{key}.epochs", "near", EPOCH_TOL)]
    if with_tt:
        gates.append(g(f"{key}.tt_sim_seconds", "lower", TIMING_TOL))
    if with_tca:
        gates.append(g(f"{key}.tca"))
    if with_mrr:
        gates.append(g(f"{key}.mrr"))
    return gates


# ---------------------------------------------------------------------------
# Legacy layouts (pre-BenchReporter): dynkge serve-bench and bench_kernels.

SERVE_GATES = [
    ("steady.cache_hit_rate", "higher", None),
    ("steady.qps", "higher", 0.90),
    ("steady.p99_seconds", "lower", TIMING_TOL),
    ("churn.qps", "higher", 0.90),
    ("churn.p99_seconds", "lower", TIMING_TOL),
    ("churn.versions_published", "higher", None),
    ("churn.failed_requests", "exact", None),
    ("baseline_scan_qps", "higher", 0.90),
]

TRAIN_GATES = [
    ("byte_identical", "exact", None),
    ("baseline.byte_identical", "exact", None),
    ("combined.byte_identical", "exact", None),
    ("baseline.speedup", "higher", 0.30),
    ("combined.speedup", "higher", 0.30),
    ("baseline.blocked_throughput", "higher", 0.90),
    ("combined.blocked_throughput", "higher", 0.90),
]

# ---------------------------------------------------------------------------
# BenchReporter-layout gate sets, one per bench binary.

TABLE1_GATES = [f"n{n}.{m}"
                for n in (1, 2, 4, 8) for m in ("allreduce", "allgather")]
TABLE1_GATES = [gate for key in TABLE1_GATES
                for gate in training_run_gates(key)]

TABLE2_GATES = [gate
                for n in (1, 2, 4, 8, 16) for m in ("allreduce", "allgather")
                for gate in training_run_gates(f"n{n}.{m}")] + [
    f("allgather_wins_at_2_nodes"),
    f("allreduce_wins_at_max_nodes"),
]

FIG1_GATES = [gate
              for ds, counts in (("fb15k", (1, 2, 4, 8)),
                                 ("fb250k", (1, 2, 4, 8, 16)))
              for n in counts for m in ("allreduce", "allgather")
              for gate in training_run_gates(f"{ds}.n{n}.{m}",
                                             with_tca=False, with_mrr=False)]

FIG2_GATES = [
    c("epochs", "near", EPOCH_TOL),
    g("rows_per_step.first_epoch"),
    g("rows_per_step.last_epoch"),
    g("final_val_tca"),
    f("rows_decreasing"),
]

FIG3_GATES = [gate
              for v in ("dense", "average", "averagex0.1", "random")
              for gate in (c(f"{v}.epochs", "near", EPOCH_TOL),
                           g(f"{v}.mean_sparsity"),
                           g(f"{v}.tca"), g(f"{v}.mrr"))] + [
    f("random_tracks_dense"),
]

FIG4_GATES = [gate
              for v in ("twobit", "twobit_rs")
              for gate in (c(f"{v}.epochs", "near", EPOCH_TOL),
                           g(f"{v}.tca"), g(f"{v}.mrr"))] + [
    f("curves_overlap"),
]

FIG5_GATES = [gate
              for n in (1, 2, 4, 8) for v in ("onebit", "twobit")
              for gate in training_run_gates(f"n{n}.{v}", with_tca=False)] + [
    g("scale.max.mrr"),
    f("best_scale_is_max"),
]

FIG6_GATES = [gate
              for v in ("fb15k.without_rp", "fb15k.with_rp")
              for gate in (c(f"{v}.epochs", "near", EPOCH_TOL),
                           g(f"{v}.tca"), g(f"{v}.mrr"))] + [
    g(f"fb250k.n{n}.{v}.epoch_seconds", "lower", TIMING_TOL)
    for n in (1, 2, 4, 8, 16) for v in ("without_rp", "with_rp")
]

TABLE4_GATES = [gate
                for r in ("r1_of_1", "r1_of_5", "r1_of_10", "r1_of_20",
                          "r1_of_30", "r5_of_5", "r10_of_10")
                for gate in training_run_gates(r, with_tca=True)] + [
    f("ss_time_win"),
    f("mrr_rises_with_pool"),
]

FIG8_GATES = [gate
              for n in (1, 2, 4, 8)
              for m in ("allreduce", "allgather", "rs", "rs_1bit",
                        "rs_1bit_rp_ss")
              for gate in training_run_gates(f"n{n}.{m}",
                                             with_tca=False)] + [
    f("combined_saves_time"),
]

FIG9_GATES = [gate
              for n in (1, 2, 4, 8, 16)
              for m in ("allreduce", "allgather", "drs", "drs_1bit",
                        "drs_1bit_rp_ss")
              for gate in training_run_gates(f"n{n}.{m}",
                                             with_tca=False)] + [
    g("drs_allreduce_fraction"),
    g("drs_1bit_allreduce_fraction"),
    f("combined_saves_time"),
]

# Pure alpha-beta arithmetic: platform-independent, gates exactly.
COST_MODEL_GATES = [gate
                    for net in ("aries.raw", "aries.quant", "ethernet.raw")
                    for r in (2, 4, 8, 16, 32)
                    for gate in (g(f"{net}.r{r}.allreduce_ms", "exact"),
                                 g(f"{net}.r{r}.allgather_ms", "exact"),
                                 f(f"{net}.r{r}.allgather_wins"))]

PS_GATES = [gate
            for n in (2, 4, 8, 16)
            for t in ("param_server", "allreduce", "allgather")
            for gate in (g(f"n{n}.{t}.comm_seconds"),
                         g(f"n{n}.{t}.epoch_seconds", "lower", TIMING_TOL))]

FEEDBACK_GATES = [gate
                  for v in ("rs", "rs_residual", "onebit_max",
                            "onebit_max_ef", "onebit_mean", "onebit_mean_ef")
                  for gate in (c(f"{v}.epochs", "near", EPOCH_TOL),
                               g(f"{v}.final_val"),
                               g(f"{v}.tca"), g(f"{v}.mrr"))]

# Hogwild at >1 thread is racy by design; gate the deterministic series.
HOGWILD_GATES = [gate
                 for p in (1, 2, 4)
                 for gate in (c(f"distributed.p{p}.epochs", "near",
                                EPOCH_TOL),
                              g(f"distributed.p{p}.tca"),
                              g(f"distributed.p{p}.mrr"))] + [
    g("hogwild.p1.tca"),
    g("hogwild.p1.mrr"),
]

# Top-K vs RS at equal kept-bytes. topk_k is derived in-run from the RS
# epoch log (deterministic), so it gates exactly alongside the headline
# "topk_mrr_ge_rs" claim.
TOPK_VS_RS_GATES = [gate
                    for v in ("rs", "topk")
                    for gate in (c(f"{v}.epochs", "near", EPOCH_TOL),
                                 g(f"{v}.tca"), g(f"{v}.mrr"),
                                 g(f"{v}.mean_rows_sent"))] + [
    c("topk_k"),
    g("kept_rows_ratio"),
    f("kept_bytes_matched"),
    f("topk_mrr_ge_rs"),
]

# The sweep itself depends on the host's core count, so only the
# pool-size-independent outputs gate.
HOST_PARALLELISM_GATES = [
    f("deterministic_across_pool_sizes"),
    c("epochs", "near", EPOCH_TOL),
    g("final_mean_loss"),
    g("best_host_speedup", "higher", 0.95),
]

OBS_OVERHEAD_GATES = [
    # The paper-level claim: < 2% wall overhead with every sink on.
    g("overhead_ratio", "ceiling", 0.02),
    f("outputs_identical"),
    c("epochs", "near", EPOCH_TOL),
    c("trace_spans", "near", EPOCH_TOL),
    c("events_written", "near", EPOCH_TOL),
]

GATE_SETS = {
    "serve": SERVE_GATES,
    "train": TRAIN_GATES,
    "table1_baseline_fb15k": TABLE1_GATES,
    "table2_baseline_fb250k": TABLE2_GATES,
    "fig1_baseline_curves": FIG1_GATES,
    "fig2_nonzero_rows": FIG2_GATES,
    "fig3_selection_thresholds": FIG3_GATES,
    "fig4_2bit_random_selection": FIG4_GATES,
    "fig5_quant_1bit_vs_2bit": FIG5_GATES,
    "fig6_relation_partition": FIG6_GATES,
    "table4_fig7_sample_selection": TABLE4_GATES,
    "fig8_combined_fb15k": FIG8_GATES,
    "fig9_combined_fb250k": FIG9_GATES,
    "ablation_cost_model": COST_MODEL_GATES,
    "ablation_parameter_server": PS_GATES,
    "ablation_feedback": FEEDBACK_GATES,
    "ablation_hogwild": HOGWILD_GATES,
    "topk_vs_rs": TOPK_VS_RS_GATES,
    "host_parallelism": HOST_PARALLELISM_GATES,
    "obs_overhead": OBS_OVERHEAD_GATES,
    # Timing-only micro benches: emit for the artifact trail, nothing is
    # stable enough across runners to gate.
    "micro_collectives": [],
    "micro_quantize": [],
    "serve_throughput": [],
}


def lookup(node, path):
    """Resolve a dotted gate path, longest-literal-key-first.

    Metric names themselves contain dots, so "metrics.gauges.n2.ag.tca"
    must match node["metrics"]["gauges"]["n2.ag.tca"]; legacy nested paths
    like "steady.qps" keep working. Backtracks on ambiguity.
    """
    if path == "":
        return node
    if not isinstance(node, dict):
        return None
    parts = path.split(".")
    for i in range(len(parts), 0, -1):
        key = ".".join(parts[:i])
        if key in node:
            found = lookup(node[key], ".".join(parts[i:]))
            if found is not None:
                return found
    return None


def check_schema_version(doc, label):
    version = doc.get("schema_version")
    if version is not None and version not in KNOWN_SCHEMA_VERSIONS:
        return (f"{label}: unsupported schema_version {version!r} "
                f"(known: {list(KNOWN_SCHEMA_VERSIONS)})")
    return None


def check(current, baseline, default_tolerance):
    """Returns (malformed, missing, failed) failure-message lists."""
    kind = current.get("bench", "serve")
    base_kind = baseline.get("bench", "serve")
    if kind != base_kind:
        return ([f"bench kind mismatch: current is '{kind}', "
                 f"baseline is '{base_kind}'"], [], [])
    gates = GATE_SETS.get(kind)
    if gates is None:
        return ([f"unknown bench kind '{kind}' "
                 f"(expected one of {sorted(GATE_SETS)})"], [], [])
    for doc, label in ((current, "current"), (baseline, "baseline")):
        error = check_schema_version(doc, label)
        if error:
            return ([error], [], [])

    missing, failed = [], []
    for path, direction, override in gates:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        if direction != "ceiling" and base is None:
            # The baseline doesn't gate this metric (e.g. a sweep point the
            # committed run didn't cover).
            continue
        if cur is None:
            missing.append(f"{path}: missing from current results")
            continue
        tol = default_tolerance if override is None else override
        if direction == "exact":
            ok = cur == base
            bound = base
        elif direction == "near":
            tol = NEAR_DEFAULT if override is None else override
            bound = tol * max(abs(float(base)), 1e-12)
            ok = abs(float(cur) - float(base)) <= bound
            bound = f"{base:g}±{bound:g}"
        elif direction == "higher":
            bound = base * (1.0 - tol)
            ok = cur >= bound
        elif direction == "ceiling":
            bound = tol  # absolute bound; the baseline value is advisory
            ok = cur <= bound
        else:  # lower
            bound = base * (1.0 + tol)
            ok = cur <= bound
        status = "ok  " if ok else "FAIL"
        base_text = "-" if base is None else f"{base:g}"
        bound_text = bound if isinstance(bound, str) else f"{bound:g}"
        print(f"  [{status}] {path}: {cur:g} vs baseline {base_text} "
              f"({direction}, bound {bound_text})")
        if not ok:
            failed.append(f"{path}: {cur:g} violates {direction} bound "
                          f"{bound_text} (baseline {base_text})")
    return ([], missing, failed)


def default_baseline_path(current):
    kind = current.get("bench", "serve")
    return BASELINE_DIR / f"BENCH_{kind}.baseline.json"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_<name>.json from this run")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed baseline (default: bench/baselines/"
                             "BENCH_<bench>.baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="default relative tolerance (default 0.10)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current results "
                             "instead of checking")
    args = parser.parse_args()

    try:
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 1

    error = check_schema_version(current, "current")
    if error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 1
    if current.get("bench", "serve") not in GATE_SETS:
        print(f"check_bench: unknown bench kind "
              f"'{current.get('bench', 'serve')}'", file=sys.stderr)
        return 1

    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path(current))

    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        with open(baseline_path, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"check_bench: baseline updated: {baseline_path}")
        return 0

    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 1

    print(f"check_bench: {args.current} vs {baseline_path} "
          f"(default tolerance {args.tolerance:.0%})")
    malformed, missing, failed = check(current, baseline, args.tolerance)
    for group, code, label in ((malformed, 1, "malformed"),
                               (failed, 3, "out-of-gate"),
                               (missing, 2, "missing-metric")):
        if group:
            print(f"check_bench: {len(group)} {label} failure(s):",
                  file=sys.stderr)
            for failure in group:
                print(f"  {failure}", file=sys.stderr)
    if malformed:
        return 1
    if failed:
        return 3
    if missing:
        return 2
    print("check_bench: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
