#!/usr/bin/env python3
"""Gate bench results against a committed baseline.

Usage:
    tools/check_bench.py BENCH_serve.json [BENCH_serve.baseline.json]
        [--tolerance 0.10]
    tools/check_bench.py BENCH_train.json BENCH_train.baseline.json

Reads the JSON written by `dynkge serve-bench --bench-json` or by
`bench_kernels --bench-json` and compares a set of gated metrics against
the committed baseline. The gate set is selected by the result's "bench"
field ("serve" when absent, for older baselines). Exit 0 when every gate
holds, 1 on any regression (or malformed input).

Gate design: correctness metrics (failed requests under churn, versions
published, cache hit rate, kernel byte-identity) are tight — they are
deterministic for a seeded stream, so the default 10% tolerance applies
and exact gates must match bit-for-bit. Timing metrics (QPS, p99,
throughput, speedup) get wide per-metric tolerances: shared CI runners
jitter by integer factors, and the gate should catch "the hot path got
10x slower", not scheduler noise. A tighter local run against the same
baseline still reports the precise deltas.
"""

import argparse
import json
import sys

# (path, direction, tolerance override or None -> default --tolerance).
# direction "higher": current >= baseline * (1 - tol)
# direction "lower":  current <= baseline * (1 + tol)
# direction "exact":  current == baseline
SERVE_GATES = [
    ("steady.cache_hit_rate", "higher", None),
    ("steady.qps", "higher", 0.90),
    ("steady.p99_seconds", "lower", 9.0),
    ("churn.qps", "higher", 0.90),
    ("churn.p99_seconds", "lower", 9.0),
    ("churn.versions_published", "higher", None),
    ("churn.failed_requests", "exact", None),
    ("baseline_scan_qps", "higher", 0.90),
]

# Training-kernel bench (bench_kernels --bench-json). byte_identical is the
# blocked path's core contract and gates exactly. The speedups are ratios
# of compute-CPU-seconds measured back to back in one process on one host,
# so they are far more stable than absolute throughput — they still get a
# generous band because CPU-frequency scaling on shared runners moves the
# scalar and blocked halves of the ratio independently.
TRAIN_GATES = [
    ("byte_identical", "exact", None),
    ("baseline.byte_identical", "exact", None),
    ("combined.byte_identical", "exact", None),
    ("baseline.speedup", "higher", 0.30),
    ("combined.speedup", "higher", 0.30),
    ("baseline.blocked_throughput", "higher", 0.90),
    ("combined.blocked_throughput", "higher", 0.90),
]

GATE_SETS = {"serve": SERVE_GATES, "train": TRAIN_GATES}


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check(current, baseline, default_tolerance):
    failures = []
    kind = current.get("bench", "serve")
    base_kind = baseline.get("bench", "serve")
    if kind != base_kind:
        return [f"bench kind mismatch: current is '{kind}', "
                f"baseline is '{base_kind}'"]
    gates = GATE_SETS.get(kind)
    if gates is None:
        return [f"unknown bench kind '{kind}' "
                f"(expected one of {sorted(GATE_SETS)})"]
    for path, direction, override in gates:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        if base is None:
            # The baseline doesn't gate this metric (e.g. no churn phase).
            continue
        if cur is None:
            failures.append(f"{path}: missing from current results")
            continue
        tol = default_tolerance if override is None else override
        if direction == "exact":
            ok = cur == base
            bound = base
        elif direction == "higher":
            bound = base * (1.0 - tol)
            ok = cur >= bound
        else:  # lower
            bound = base * (1.0 + tol)
            ok = cur <= bound
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {path}: {cur:g} vs baseline {base:g} "
              f"({direction}, bound {bound:g})")
        if not ok:
            failures.append(f"{path}: {cur:g} violates {direction} bound "
                            f"{bound:g} (baseline {base:g})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_serve.json from this run")
    parser.add_argument("baseline", nargs="?",
                        default="BENCH_serve.baseline.json",
                        help="committed baseline (default: "
                             "BENCH_serve.baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="default relative tolerance (default 0.10)")
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 1

    print(f"check_bench: {args.current} vs {args.baseline} "
          f"(default tolerance {args.tolerance:.0%})")
    failures = check(current, baseline, args.tolerance)
    if failures:
        print(f"check_bench: {len(failures)} gate(s) failed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
