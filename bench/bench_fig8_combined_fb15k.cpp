// Figure 8 — all methods on FB15K-like over 1..8 nodes:
//   {allreduce, allgather, RS, RS+1-bit, RS+1-bit+RP+SS}
//   (a) total training time, (b) epochs, (c) MRR.
//
// Expected shapes (paper): the combined method has the lowest training
// time at every node count (65.2% average reduction) and the highest MRR
// (+17.7% average); RS alone tracks the baseline MRR; 1-bit alone dents
// MRR slightly at high node counts.
#include <iostream>

#include "harness/harness.hpp"
#include "harness/paper_reference.hpp"

using namespace dynkge;
namespace paper = dynkge::bench::paper;

int main(int argc, char** argv) {
  const auto options =
      bench::parse_options(argc, argv, "fb15k", {1, 2, 4, 8});
  bench::BenchReporter reporter("fig8_combined_fb15k", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Figure 8: combined methods on FB15K-like",
      "RS+1-bit+RP+SS yields the lowest training time and the highest MRR "
      "at every node count",
      options, dataset);

  struct Method {
    const char* name;
    const char* key;  ///< metric-name slug for the --bench-json block
    core::StrategyConfig strategy;
  };
  const std::vector<Method> methods = {
      {"allreduce", "allreduce",
       core::StrategyConfig::baseline_allreduce(options.baseline_negatives)},
      {"allgather", "allgather",
       core::StrategyConfig::baseline_allgather(options.baseline_negatives)},
      {"RS", "rs", core::StrategyConfig::rs(options.baseline_negatives)},
      {"RS+1-bit", "rs_1bit",
       core::StrategyConfig::rs_1bit(options.baseline_negatives)},
      {"RS+1-bit+RP+SS", "rs_1bit_rp_ss",
       core::StrategyConfig::rs_1bit_rp_ss(options.ss_sampled,
                                           options.ss_used)},
  };

  util::Table tt({"nodes", "allreduce", "allgather", "RS", "RS+1-bit",
                  "RS+1-bit+RP+SS"});
  util::Table epochs = tt;
  util::Table mrr = tt;

  double combined_tt_sum = 0.0, allreduce_tt_sum = 0.0;
  double combined_mrr_sum = 0.0, allreduce_mrr_sum = 0.0;
  for (const std::int64_t nodes : options.nodes) {
    tt.begin_row().add(nodes);
    epochs.begin_row().add(nodes);
    mrr.begin_row().add(nodes);
    for (const auto& method : methods) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy = method.strategy;
      const auto report = bench::run_experiment(dataset, config);
      tt.add(report.total_sim_seconds, 3);
      epochs.add(static_cast<std::int64_t>(report.epochs));
      mrr.add(report.ranking.mrr, 3);
      const std::string key =
          "n" + std::to_string(nodes) + "." + method.key;
      reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".mrr", report.ranking.mrr);
      if (std::string(method.name) == "allreduce") {
        allreduce_tt_sum += report.total_sim_seconds;
        allreduce_mrr_sum += report.ranking.mrr;
      }
      if (std::string(method.name) == "RS+1-bit+RP+SS") {
        combined_tt_sum += report.total_sim_seconds;
        combined_mrr_sum += report.ranking.mrr;
      }
    }
  }

  bench::emit(tt, "Figure 8a (reproduced): total training time (sim s)",
              options.csv);
  bench::emit(epochs, "Figure 8b (reproduced): epochs to convergence",
              options.csv);
  bench::emit(mrr, "Figure 8c (reproduced): MRR", options.csv);

  const double time_reduction =
      100.0 * (1.0 - combined_tt_sum / allreduce_tt_sum);
  const double mrr_gain =
      100.0 * (combined_mrr_sum / allreduce_mrr_sum - 1.0);
  std::cout << "Summary vs all-reduce baseline (averaged over node counts):\n"
            << "  training-time reduction: " << time_reduction
            << "%  (paper: " << paper::kFb15kTimeReductionPct << "%)\n"
            << "  MRR change: " << mrr_gain << "%  (paper: +"
            << paper::kFb15kMrrGainPct << "%)\n";
  reporter.set("time_reduction_pct", time_reduction);
  reporter.set("mrr_gain_pct", mrr_gain);
  reporter.flag("combined_saves_time", time_reduction > 0.0);
  return reporter.write() ? 0 : 1;
}
