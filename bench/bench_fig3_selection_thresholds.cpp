// Figure 3 — comparing gradient-row selection thresholds:
//   (a) validation TCA vs epoch for dense / average / average*0.1 / random
//       selection
//   (b) sparsity (fraction of rows dropped) for the same four settings
//
// Expected shape (paper): the Bernoulli "random selection" convergence
// curve overlaps the dense one while still dropping a solid fraction of
// rows; the hard "average" threshold drops too much and hurts accuracy.
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {2});
  bench::BenchReporter reporter("fig3_selection_thresholds", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Figure 3: gradient-vector selection thresholds",
      "random (Bernoulli) selection tracks the dense convergence curve "
      "while introducing sparsity; the raw average threshold overshoots",
      options, dataset);

  struct Variant {
    const char* name;
    core::SelectionMode mode;
  };
  const Variant variants[] = {
      {"dense", core::SelectionMode::kNone},
      {"average", core::SelectionMode::kAverageThreshold},
      {"averagex0.1", core::SelectionMode::kAverageTenth},
      {"random", core::SelectionMode::kBernoulli},
  };

  std::vector<core::TrainReport> reports;
  for (const auto& variant : variants) {
    core::TrainConfig config =
        bench::make_config(options, static_cast<int>(options.nodes[0]));
    config.strategy =
        core::StrategyConfig::baseline_allgather(options.baseline_negatives);
    config.strategy.selection = variant.mode;
    reports.push_back(bench::run_experiment(dataset, config));
  }

  // Figure 3a: TCA-vs-epoch curves (sampled rows across the longest run).
  std::size_t longest = 0;
  for (const auto& report : reports) {
    longest = std::max(longest, report.epoch_log.size());
  }
  util::Table curve({"epoch", "dense TCA", "average TCA", "averagex0.1 TCA",
                     "random TCA"});
  const std::size_t stride = std::max<std::size_t>(1, longest / 20);
  for (std::size_t epoch = 0; epoch < longest; epoch += stride) {
    curve.begin_row().add(static_cast<std::int64_t>(epoch));
    for (const auto& report : reports) {
      if (epoch < report.epoch_log.size()) {
        curve.add(report.epoch_log[epoch].val_accuracy, 1);
      } else {
        curve.add("-");
      }
    }
  }
  bench::emit(curve, "Figure 3a (reproduced): TCA vs epoch per threshold",
              options.csv);

  // Figure 3b: achieved sparsity + summary metrics.
  util::Table summary(
      {"threshold", "mean sparsity", "N", "final TCA", "MRR"});
  for (std::size_t v = 0; v < reports.size(); ++v) {
    const auto& report = reports[v];
    double sparsity_sum = 0.0;
    for (const auto& record : report.epoch_log) {
      if (record.rows_before_selection > 0) {
        sparsity_sum += 1.0 - record.rows_sent / record.rows_before_selection;
      }
    }
    summary.begin_row()
        .add(variants[v].name)
        .add(sparsity_sum / report.epoch_log.size(), 3)
        .add(static_cast<std::int64_t>(report.epochs))
        .add(report.tca, 1)
        .add(report.ranking.mrr, 3);
    const std::string key = variants[v].name;
    reporter.set(key + ".mean_sparsity",
                 sparsity_sum / report.epoch_log.size());
    reporter.count(key + ".epochs",
                   static_cast<std::uint64_t>(report.epochs));
    reporter.set(key + ".tca", report.tca);
    reporter.set(key + ".mrr", report.ranking.mrr);
  }
  bench::emit(summary, "Figure 3b (reproduced): sparsity per threshold",
              options.csv);

  std::cout << "Shape check: random-selection final TCA ("
            << reports[3].tca << ") within 2 points of dense ("
            << reports[0].tca << ") while dropping rows -> "
            << (reports[3].tca > reports[0].tca - 2.0 ? "holds\n"
                                                      : "does not hold\n");
  reporter.flag("random_tracks_dense", reports[3].tca > reports[0].tca - 2.0);
  return reporter.write() ? 0 : 1;
}
