// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper. The
// harness centralizes: dataset construction (synthetic FB15K/FB250K
// stand-ins, or real data via --data), per-dataset training defaults,
// CLI overrides, and result-row printing with the paper's reported value
// alongside the measured one.
//
// Common flags (all binaries):
//   --scale bench|mini|full   workload size (default bench: seconds/run;
//                             mini: the DESIGN.md mini scale; full: the
//                             paper-sized graphs — hours)
//   --data <dir>              use a real OpenKE/TSV dataset instead
//   --nodes 1,2,4,8           node counts to sweep (where applicable)
//   --rank N                  embedding rank (complex components)
//   --batch N                 positives per rank per step
//   --lr X --tolerance N --max-epochs N --seed N
//   --model complex|distmult|transe
//   --csv                     also emit CSV rows for plotting
//   --bench-json <file>       write the machine-checkable result block
//                             (gated in CI by tools/check_bench.py)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/trainer.hpp"
#include "kge/dataset.hpp"
#include "obs/metrics.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

namespace dynkge::bench {

struct HarnessOptions {
  std::string dataset = "fb15k";  ///< fb15k | fb250k (synthetic stand-ins)
  std::string scale = "bench";    ///< bench | mini | full
  std::string data_dir;           ///< non-empty: load real data instead
  std::string model = "complex";

  std::vector<std::int64_t> nodes;

  std::int32_t rank = 16;
  std::size_t batch = 500;
  double base_lr = 0.01;
  int tolerance = 10;
  int max_epochs = 150;
  std::uint64_t seed = 20220829;  // the conference start date
  bool csv = false;

  /// Baseline negatives per positive (paper: 10 for FB15K, 1 for FB250K;
  /// scaled down at bench scale).
  int baseline_negatives = 4;
  /// Sample-selection ratio for the +SS presets (paper: 1:10 / 1:5).
  int ss_sampled = 8;
  int ss_used = 1;
};

/// Uniform machine-checkable result block for bench binaries.
///
/// Every bench registers its named scalar results here (backed by an
/// obs::MetricsRegistry) and calls write() at the end; with `--bench-json
/// <file>` on the command line that emits one JSON object keyed on a
/// "bench" field, which tools/check_bench.py gates against the committed
/// baseline in bench/baselines/. Layout (DESIGN.md section 11):
///
///   {"bench":"<name>","schema_version":1,
///    "context":{...workload identity, strings/ints...},
///    "flags":{...booleans, gate direction "exact"...},
///    "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
///
/// Metric names may contain dots ("n2.allreduce.tt_sim_seconds");
/// check_bench resolves gate paths longest-key-first so that is safe.
class BenchReporter {
 public:
  /// `bench` keys the gate set; argv is scanned for --bench-json.
  BenchReporter(std::string bench, int argc, const char* const* argv);

  /// True when --bench-json was given (write() will produce a file).
  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Workload-identity fields, emitted under "context" in insertion
  /// order. Not gated — they make a failing BENCH_*.json self-describing.
  void context(const std::string& key, const std::string& value);
  void context(const std::string& key, std::int64_t value);
  /// dataset/scale/model/rank/batch/seed from the parsed harness options.
  void context_from(const HarnessOptions& options);

  /// Scalar result -> gauge. Use for measured or derived doubles.
  void set(const std::string& name, double value);
  /// Integer result -> counter (set-once semantics, not accumulation).
  void count(const std::string& name, std::uint64_t value);
  /// Boolean result -> "flags" (always gated exact when listed).
  void flag(const std::string& name, bool value);

  /// Direct registry access for code that already records into one.
  obs::MetricsRegistry& registry() { return registry_; }

  std::string to_json() const;

  /// Write the block to the --bench-json path; no-op (true) when the
  /// flag is absent. Logs and returns false on I/O failure so mains can
  /// fold it into their exit status.
  bool write() const;

 private:
  struct ContextValue {
    bool is_int = false;
    std::string text;
    std::int64_t number = 0;
  };

  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, ContextValue>> context_;
  std::map<std::string, bool> flags_;
  obs::MetricsRegistry registry_;
};

/// Parse shared flags. `dataset` fixes which stand-in the binary targets.
HarnessOptions parse_options(int argc, const char* const* argv,
                             const std::string& dataset,
                             std::vector<std::int64_t> default_nodes);

/// Build the experiment dataset (synthetic unless --data was given).
kge::Dataset make_dataset(const HarnessOptions& options);

/// Training defaults for this dataset/scale with CLI overrides applied.
core::TrainConfig make_config(const HarnessOptions& options, int nodes);

/// Run one configured training job, logging a one-line summary to stderr.
core::TrainReport run_experiment(const kge::Dataset& dataset,
                                 core::TrainConfig config);

/// Print the standard header naming the experiment and its substitutions.
void print_banner(const std::string& experiment_id,
                  const std::string& paper_claim,
                  const HarnessOptions& options,
                  const kge::Dataset& dataset);

/// Emit the table, plus CSV when requested.
void emit(const util::Table& table, const std::string& caption, bool csv);

}  // namespace dynkge::bench
