// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper. The
// harness centralizes: dataset construction (synthetic FB15K/FB250K
// stand-ins, or real data via --data), per-dataset training defaults,
// CLI overrides, and result-row printing with the paper's reported value
// alongside the measured one.
//
// Common flags (all binaries):
//   --scale bench|mini|full   workload size (default bench: seconds/run;
//                             mini: the DESIGN.md mini scale; full: the
//                             paper-sized graphs — hours)
//   --data <dir>              use a real OpenKE/TSV dataset instead
//   --nodes 1,2,4,8           node counts to sweep (where applicable)
//   --rank N                  embedding rank (complex components)
//   --batch N                 positives per rank per step
//   --lr X --tolerance N --max-epochs N --seed N
//   --model complex|distmult|transe
//   --csv                     also emit CSV rows for plotting
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "kge/dataset.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

namespace dynkge::bench {

struct HarnessOptions {
  std::string dataset = "fb15k";  ///< fb15k | fb250k (synthetic stand-ins)
  std::string scale = "bench";    ///< bench | mini | full
  std::string data_dir;           ///< non-empty: load real data instead
  std::string model = "complex";

  std::vector<std::int64_t> nodes;

  std::int32_t rank = 16;
  std::size_t batch = 500;
  double base_lr = 0.01;
  int tolerance = 10;
  int max_epochs = 150;
  std::uint64_t seed = 20220829;  // the conference start date
  bool csv = false;

  /// Baseline negatives per positive (paper: 10 for FB15K, 1 for FB250K;
  /// scaled down at bench scale).
  int baseline_negatives = 4;
  /// Sample-selection ratio for the +SS presets (paper: 1:10 / 1:5).
  int ss_sampled = 8;
  int ss_used = 1;
};

/// Parse shared flags. `dataset` fixes which stand-in the binary targets.
HarnessOptions parse_options(int argc, const char* const* argv,
                             const std::string& dataset,
                             std::vector<std::int64_t> default_nodes);

/// Build the experiment dataset (synthetic unless --data was given).
kge::Dataset make_dataset(const HarnessOptions& options);

/// Training defaults for this dataset/scale with CLI overrides applied.
core::TrainConfig make_config(const HarnessOptions& options, int nodes);

/// Run one configured training job, logging a one-line summary to stderr.
core::TrainReport run_experiment(const kge::Dataset& dataset,
                                 core::TrainConfig config);

/// Print the standard header naming the experiment and its substitutions.
void print_banner(const std::string& experiment_id,
                  const std::string& paper_claim,
                  const HarnessOptions& options,
                  const kge::Dataset& dataset);

/// Emit the table, plus CSV when requested.
void emit(const util::Table& table, const std::string& caption, bool csv);

}  // namespace dynkge::bench
