// The paper's reported numbers, transcribed for side-by-side printing.
// (Panda & Vadhiyar, ICPP 2022 — Tables 1, 2, 4 and the section-5 summary
// claims.) Times are hours on their Cray XC40; our measurements are
// simulated-cluster seconds, so only the *shapes* are comparable.
#pragma once

#include <cstddef>

namespace dynkge::bench::paper {

struct BaselineRow {
  int nodes;
  double allreduce_tt_hours;
  int allreduce_epochs;
  double allreduce_tca;
  double allreduce_mrr;
  double allgather_tt_hours;
  int allgather_epochs;
  double allgather_tca;
  double allgather_mrr;
};

/// Table 1: baseline on FB15K.
inline constexpr BaselineRow kTable1Fb15k[] = {
    {1, 3.26, 301, 90.7, 0.59, 3.26, 301, 90.7, 0.59},
    {2, 1.27, 257, 90.2, 0.57, 3.52, 358, 90.6, 0.59},
    {4, 0.78, 300, 90.3, 0.58, 2.48, 349, 90.3, 0.58},
    {8, 0.54, 381, 90.3, 0.58, 2.34, 314, 90.1, 0.56},
};

/// Table 2: baseline on FB250K.
inline constexpr BaselineRow kTable2Fb250k[] = {
    {1, 37.20, 250, 89.6, 0.28, 37.20, 250, 89.6, 0.28},
    {2, 35.30, 252, 89.6, 0.28, 26.30, 283, 89.9, 0.28},
    {4, 24.04, 302, 89.6, 0.28, 19.60, 298, 89.7, 0.28},
    {8, 14.30, 323, 89.5, 0.29, 17.53, 339, 89.1, 0.28},
    {16, 11.30, 379, 88.5, 0.28, 16.10, 386, 88.5, 0.28},
};

struct SampleSelectionRow {
  const char* ratio;  ///< "m out of n"
  int sampled;
  int used;
  double tt_hours;
  int epochs;
  double mrr;
  double tca;
};

/// Table 4: sample selection with 1-bit quantization on 2 nodes (FB15K).
inline constexpr SampleSelectionRow kTable4[] = {
    {"1 out of 1", 1, 1, 0.41, 423, 0.523, 89.3},
    {"1 out of 5", 5, 1, 0.66, 240, 0.590, 90.53},
    {"1 out of 10", 10, 1, 0.775, 229, 0.610, 90.7},
    {"1 out of 20", 20, 1, 0.97, 210, 0.629, 90.74},
    {"1 out of 30", 30, 1, 1.06, 187, 0.630, 90.8},
    {"5 out of 5", 5, 5, 1.29, 390, 0.585, 90.5},
    {"10 out of 10", 10, 10, 2.10, 344, 0.592, 90.5},
};

// Section 5.3 summary claims.
inline constexpr double kFb250kTimeReductionPct = 44.95;
inline constexpr double kFb250kMrrGainPct = 17.5;
inline constexpr double kFb15kTimeReductionPct = 65.2;
inline constexpr double kFb15kMrrGainPct = 17.7;
// Section 4.3: all-reduce epochs drop ~60% once quantization is on.
inline constexpr double kAllReduceReductionPct = 60.0;

}  // namespace dynkge::bench::paper
