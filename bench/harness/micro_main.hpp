// Shared main() for the google-benchmark micro benches.
//
// BENCHMARK_MAIN() cannot carry the harness-wide --bench-json flag, so the
// micro binaries call run_micro_bench() instead: it strips --bench-json
// from argv before benchmark::Initialize sees it (google-benchmark rejects
// unknown flags), runs the registered benchmarks through a console
// reporter that mirrors every finished run into a BenchReporter, and
// writes the same uniform JSON block every other bench emits. Per-run
// metric names are the google-benchmark names verbatim
// ("BM_AllReduceSum/2/1024"), with ".real_seconds_per_iter",
// ".cpu_seconds_per_iter", and any user counters appended.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace dynkge::bench {

class MicroJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit MicroJsonReporter(BenchReporter& sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      sink_.set(name + ".real_seconds_per_iter",
                run.real_accumulated_time / iters);
      sink_.set(name + ".cpu_seconds_per_iter",
                run.cpu_accumulated_time / iters);
      for (const auto& [counter_name, counter] : run.counters) {
        sink_.set(name + "." + counter_name, counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter& sink_;
};

inline int run_micro_bench(const std::string& bench_name, int argc,
                           char** argv) {
  BenchReporter sink(bench_name, argc, argv);
  // google-benchmark aborts on flags it does not know; hide ours.
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-json") {
      if (i + 1 < argc) ++i;
      continue;
    }
    if (arg.rfind("--bench-json=", 0) == 0) continue;
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             filtered.data())) {
    return 1;
  }
  MicroJsonReporter reporter(sink);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return sink.write() ? 0 : 1;
}

}  // namespace dynkge::bench

/// Drop-in replacement for BENCHMARK_MAIN() with --bench-json support.
#define DYNKGE_MICRO_BENCH_MAIN(bench_name)                       \
  int main(int argc, char** argv) {                               \
    return dynkge::bench::run_micro_bench(bench_name, argc, argv); \
  }
