#include "harness/harness.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "kge/synthetic.hpp"
#include "kge/tsv_loader.hpp"
#include "util/json_writer.hpp"
#include "util/stopwatch.hpp"

namespace dynkge::bench {

/// Bump when the BENCH_*.json layout changes incompatibly; check_bench.py
/// rejects versions it does not know.
constexpr std::int64_t kBenchSchemaVersion = 1;

BenchReporter::BenchReporter(std::string bench, int argc,
                             const char* const* argv)
    : bench_(std::move(bench)) {
  const util::ArgParser args(argc, argv);
  path_ = args.get_string("bench-json", "");
}

void BenchReporter::context(const std::string& key, const std::string& value) {
  ContextValue v;
  v.text = value;
  context_.emplace_back(key, std::move(v));
}

void BenchReporter::context(const std::string& key, std::int64_t value) {
  ContextValue v;
  v.is_int = true;
  v.number = value;
  context_.emplace_back(key, std::move(v));
}

void BenchReporter::context_from(const HarnessOptions& options) {
  context("dataset", options.data_dir.empty()
                         ? options.dataset + "/" + options.scale
                         : options.data_dir);
  context("model", options.model);
  context("rank", static_cast<std::int64_t>(options.rank));
  context("batch", static_cast<std::int64_t>(options.batch));
  context("seed", static_cast<std::int64_t>(options.seed));
}

void BenchReporter::set(const std::string& name, double value) {
  registry_.gauge(name).set(value);
}

void BenchReporter::count(const std::string& name, std::uint64_t value) {
  registry_.counter(name).add(value);
}

void BenchReporter::flag(const std::string& name, bool value) {
  flags_[name] = value;
}

std::string BenchReporter::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.kv("bench", bench_);
  json.kv("schema_version", kBenchSchemaVersion);
  json.key("context").begin_object();
  for (const auto& [key, value] : context_) {
    if (value.is_int) {
      json.kv(key, value.number);
    } else {
      json.kv(key, value.text);
    }
  }
  json.end_object();
  json.key("flags").begin_object();
  for (const auto& [name, value] : flags_) {
    json.kv(name, value);
  }
  json.end_object();
  json.key("metrics").raw(registry_.to_json());
  json.end_object();
  return json.str();
}

bool BenchReporter::write() const {
  if (path_.empty()) return true;
  std::ofstream out(path_);
  out << to_json() << "\n";
  if (!out) {
    std::fprintf(stderr, "[bench] failed to write %s\n", path_.c_str());
    return false;
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path_.c_str());
  return true;
}
namespace {

kge::SyntheticSpec spec_for(const std::string& dataset,
                            const std::string& scale) {
  using kge::SyntheticSpec;
  if (dataset == "fb15k") {
    if (scale == "full") return SyntheticSpec::fb15k_full();
    if (scale == "mini") return SyntheticSpec::fb15k_mini();
    // bench: seconds per training run on one laptop core. The elevated
    // noise fraction keeps the ranking task off its accuracy ceiling so
    // method-to-method MRR differences stay visible (the paper's FB15K
    // MRR band is 0.52-0.67).
    SyntheticSpec spec;
    spec.num_entities = 1000;
    spec.num_relations = 80;
    spec.num_triples = 15000;
    spec.num_latent_types = 12;
    spec.noise_fraction = 0.25;
    spec.seed = 151;
    return spec;
  }
  if (dataset == "fb250k") {
    if (scale == "full") return SyntheticSpec::fb250k_full();
    if (scale == "mini") return SyntheticSpec::fb250k_mini();
    // Relatively more entities than the fb15k stand-in so the per-step
    // gradient matrix is *sparse* (the property that makes all-gather win
    // at small node counts on FB250K).
    SyntheticSpec spec;
    spec.num_entities = 6000;
    spec.num_relations = 200;
    spec.num_triples = 30000;
    spec.num_latent_types = 24;
    spec.noise_fraction = 0.25;
    spec.seed = 251;
    return spec;
  }
  throw std::invalid_argument("unknown dataset preset: " + dataset);
}

}  // namespace

HarnessOptions parse_options(int argc, const char* const* argv,
                             const std::string& dataset,
                             std::vector<std::int64_t> default_nodes) {
  const util::ArgParser args(argc, argv);
  HarnessOptions options;
  options.dataset = dataset;
  options.scale = args.get_string("scale", "bench");
  options.data_dir = args.get_string("data", "");
  options.model = args.get_string("model", "complex");
  options.nodes = args.get_int_list("nodes", default_nodes);
  options.csv = args.has_flag("csv");
  options.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20220829));

  // Dataset-dependent defaults (paper values at full scale; scaled-down
  // equivalents at bench scale so a full sweep stays in minutes).
  const bool full = options.scale == "full";
  if (dataset == "fb250k") {
    options.baseline_negatives = 1;  // paper: 1 negative for FB250K
    options.ss_sampled = 5;          // paper ratio 1:5
    options.ss_used = 1;
    options.batch = full ? 10000 : 500;
  } else {
    // Paper: FB15K baseline trains with 10 negatives per positive and the
    // SS runs sample 10 and keep the hardest 1 — the baseline negative
    // count matches the SS sample count, which is what makes SS a large
    // *time* win. Bench scale uses 8 for both.
    options.baseline_negatives = full ? 10 : 8;
    options.ss_sampled = full ? 10 : 8;
    options.ss_used = 1;
    options.batch = full ? 10000 : 500;
  }
  options.base_lr = full ? 0.001 : 0.01;
  options.tolerance = full ? 15 : 10;
  options.max_epochs = full ? 500 : 150;
  options.rank = full ? 100 : 16;

  options.rank = static_cast<std::int32_t>(args.get_int("rank", options.rank));
  options.batch =
      static_cast<std::size_t>(args.get_int("batch", options.batch));
  options.base_lr = args.get_double("lr", options.base_lr);
  options.tolerance =
      static_cast<int>(args.get_int("tolerance", options.tolerance));
  options.max_epochs =
      static_cast<int>(args.get_int("max-epochs", options.max_epochs));
  options.baseline_negatives = static_cast<int>(
      args.get_int("negatives", options.baseline_negatives));
  options.ss_sampled =
      static_cast<int>(args.get_int("ss-sampled", options.ss_sampled));
  options.ss_used = static_cast<int>(args.get_int("ss-used", options.ss_used));
  return options;
}

kge::Dataset make_dataset(const HarnessOptions& options) {
  if (!options.data_dir.empty()) {
    return kge::load_dataset(options.data_dir);
  }
  return kge::generate_synthetic(spec_for(options.dataset, options.scale));
}

core::TrainConfig make_config(const HarnessOptions& options, int nodes) {
  core::TrainConfig config;
  config.model_name = options.model;
  config.embedding_rank = options.rank;
  config.num_nodes = nodes;
  config.batch_size = options.batch;
  config.lr.base_lr = options.base_lr;
  config.lr.tolerance = options.tolerance;
  config.max_epochs = options.max_epochs;
  config.seed = options.seed;
  config.strategy =
      core::StrategyConfig::baseline_allreduce(options.baseline_negatives);
  // Full-scale runs model the paper's Aries interconnect directly; the
  // scaled-down bench workloads use the bench-calibrated profile so the
  // communication share of an epoch matches the full-scale regime.
  config.network = options.scale == "full"
                       ? comm::CostModelParams::aries()
                       : comm::CostModelParams::bench_scale();
  return config;
}

core::TrainReport run_experiment(const kge::Dataset& dataset,
                                 core::TrainConfig config) {
  const util::Stopwatch watch;
  core::DistributedTrainer trainer(dataset, config);
  core::TrainReport report = trainer.train();
  std::fprintf(stderr,
               "[bench] %-18s P=%-2d N=%-3d TT(sim)=%8.3fs MRR=%.3f "
               "TCA=%.1f (%.1fs wall)\n",
               report.strategy_label.c_str(), report.num_nodes, report.epochs,
               report.total_sim_seconds, report.ranking.mrr, report.tca,
               watch.seconds());
  return report;
}

void print_banner(const std::string& experiment_id,
                  const std::string& paper_claim,
                  const HarnessOptions& options,
                  const kge::Dataset& dataset) {
  std::cout << "==========================================================\n"
            << experiment_id << "\n"
            << "Paper claim: " << paper_claim << "\n"
            << "Workload: "
            << dataset.summary(options.data_dir.empty()
                                   ? options.dataset + "-like synthetic (" +
                                         options.scale + " scale)"
                                   : options.data_dir)
            << "\n"
            << "Model: " << options.model << " rank=" << options.rank
            << " batch=" << options.batch << " lr=" << options.base_lr
            << " tolerance=" << options.tolerance
            << " negatives=" << options.baseline_negatives << "\n"
            << "Note: times are simulated-cluster seconds (alpha-beta model "
               "+ measured thread compute); see DESIGN.md section 2.\n"
            << "==========================================================\n";
}

void emit(const util::Table& table, const std::string& caption, bool csv) {
  table.print(std::cout, caption);
  if (csv) {
    std::cout << "CSV:\n" << table.to_csv() << "\n";
  }
}

}  // namespace dynkge::bench
