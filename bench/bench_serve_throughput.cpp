// Micro-benchmarks (google-benchmark) for the serving layer: single-query
// full-scan baseline vs TopKScorer (serial / parallel) vs the full
// InferenceService batch path with cold and warm caches.
#include <benchmark/benchmark.h>

#include "harness/micro_main.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "kge/model_factory.hpp"
#include "serve/service.hpp"

namespace {

using dynkge::kge::EntityId;
using dynkge::kge::KgeModel;
using dynkge::kge::RelationId;
using dynkge::serve::Direction;
using dynkge::serve::InferenceService;
using dynkge::serve::ServiceConfig;
using dynkge::serve::ThreadPool;
using dynkge::serve::TopKQuery;
using dynkge::serve::TopKScorer;
using dynkge::util::Rng;
using dynkge::util::ZipfSampler;

constexpr std::int32_t kEntities = 20000;
constexpr std::int32_t kRelations = 64;
constexpr std::int32_t kRank = 32;
constexpr std::int32_t kTopK = 10;

const KgeModel& shared_model() {
  static const auto model = [] {
    auto m = dynkge::kge::make_model("complex", kEntities, kRelations, kRank);
    Rng rng(77);
    m->init(rng);
    return m;
  }();
  return *model;
}

std::vector<TopKQuery> make_stream(std::size_t count,
                                   std::size_t distinct) {
  Rng rng(5);
  std::vector<TopKQuery> pool(distinct);
  for (auto& q : pool) {
    q.direction =
        rng.next_bernoulli(0.5) ? Direction::kTail : Direction::kHead;
    q.entity = static_cast<EntityId>(rng.next_below(kEntities));
    q.relation = static_cast<RelationId>(rng.next_below(kRelations));
    q.k = kTopK;
  }
  const ZipfSampler skew(distinct, 1.0);
  std::vector<TopKQuery> stream(count);
  for (auto& q : stream) q = pool[skew.sample(rng)];
  return stream;
}

/// The pre-serve inference path: full scan into a dense score vector,
/// then partial_sort. One query per iteration.
void BM_SingleQueryScan(benchmark::State& state) {
  const KgeModel& model = shared_model();
  const auto stream = make_stream(512, 512);
  std::vector<double> scores(kEntities);
  std::vector<EntityId> order(kEntities);
  std::size_t next = 0;
  for (auto _ : state) {
    const auto& q = stream[next++ % stream.size()];
    if (q.direction == Direction::kTail) {
      model.score_all_tails(q.entity, q.relation, scores);
    } else {
      model.score_all_heads(q.relation, q.entity, scores);
    }
    for (std::size_t e = 0; e < order.size(); ++e) {
      order[e] = static_cast<EntityId>(e);
    }
    std::partial_sort(order.begin(), order.begin() + kTopK, order.end(),
                      [&](EntityId a, EntityId b) {
                        return scores[a] > scores[b];
                      });
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleQueryScan);

/// Bounded-heap blocked scan, one thread: no dense score vector, no full
/// sort — the win independent of parallelism and caching.
void BM_TopKScorerSerial(benchmark::State& state) {
  const KgeModel& model = shared_model();
  const TopKScorer scorer;
  const auto stream = make_stream(512, 512);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scorer.topk(stream[next++ % stream.size()], model));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TopKScorerSerial);

/// One query fanned out across N workers (latency-oriented parallelism).
void BM_TopKScorerParallel(benchmark::State& state) {
  const KgeModel& model = shared_model();
  const TopKScorer scorer;
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto stream = make_stream(512, 512);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scorer.topk(stream[next++ % stream.size()], model, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TopKScorerParallel)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// The full service path on a Zipf-skewed stream, batch of 32 per
/// iteration: across-query parallelism plus the LRU cache (cold = cache
/// disabled, warm = cache sized for the working set).
void BM_ServiceBatch(benchmark::State& state) {
  ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_capacity = static_cast<std::size_t>(state.range(1));
  InferenceService service(shared_model(), nullptr, config);
  const auto stream = make_stream(4096, 256);
  constexpr std::size_t kBatch = 32;
  std::size_t next = 0;
  for (auto _ : state) {
    const std::span<const TopKQuery> batch(stream.data() + next, kBatch);
    next = (next + kBatch) % (stream.size() - kBatch);
    benchmark::DoNotOptimize(service.topk_batch(batch));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_ServiceBatch)
    ->ArgNames({"threads", "cache"})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->UseRealTime();

}  // namespace

DYNKGE_MICRO_BENCH_MAIN("serve_throughput")
