// Figure 2 — number of non-zero gradient rows per step as training
// progresses.
//
// Expected shape (paper): the count *decreases* over epochs — embeddings
// stabilize, fewer rows carry significant gradient — which is the
// motivation for probing all-gather later in training (strategy 1).
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  auto options = bench::parse_options(argc, argv, "fb15k", {2});
  bench::BenchReporter reporter("fig2_nonzero_rows", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Figure 2: non-zero gradient rows vs epoch",
      "the number of non-zero gradient rows shrinks as training proceeds",
      options, dataset);

  core::TrainConfig config =
      bench::make_config(options, static_cast<int>(options.nodes[0]));
  // Fixed-length run (no early stop) so the series covers a full schedule.
  config.lr.tolerance = config.max_epochs;
  config.compute_final_metrics = false;
  config.strategy =
      core::StrategyConfig::baseline_allgather(options.baseline_negatives);
  const auto report = bench::run_experiment(dataset, config);

  util::Table table({"epoch", "nonzero entity rows/step", "val TCA"});
  const std::size_t stride =
      std::max<std::size_t>(1, report.epoch_log.size() / 25);
  for (std::size_t i = 0; i < report.epoch_log.size(); i += stride) {
    const auto& record = report.epoch_log[i];
    table.begin_row()
        .add(static_cast<std::int64_t>(record.epoch))
        .add(record.nonzero_entity_rows, 1)
        .add(record.val_accuracy, 1);
  }
  bench::emit(table, "Figure 2 (reproduced): non-zero gradient rows",
              options.csv);

  const double first = report.epoch_log.front().nonzero_entity_rows;
  const double last = report.epoch_log.back().nonzero_entity_rows;
  std::cout << "Shape check: rows/step start=" << first << " end=" << last
            << (last < first ? "  -> decreasing (paper agrees)\n"
                             : "  -> not decreasing\n");
  reporter.count("epochs", static_cast<std::uint64_t>(report.epochs));
  reporter.set("rows_per_step.first_epoch", first);
  reporter.set("rows_per_step.last_epoch", last);
  reporter.set("final_val_tca", report.epoch_log.back().val_accuracy);
  reporter.flag("rows_decreasing", last < first);
  return reporter.write() ? 0 : 1;
}
