// Figure 4 — 2-bit quantization with and without random selection on the
// FB15K-like dataset: convergence (validation TCA per epoch).
//
// Expected shape (paper): adding random selection on top of 2-bit
// quantization does not change the convergence curve.
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {2});
  bench::BenchReporter reporter("fig4_2bit_random_selection", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Figure 4: 2-bit quantization with random selection",
      "2-bit quantization's convergence is unaffected by adding random "
      "selection",
      options, dataset);

  std::vector<core::TrainReport> reports;
  for (const bool with_rs : {false, true}) {
    core::TrainConfig config =
        bench::make_config(options, static_cast<int>(options.nodes[0]));
    config.strategy =
        core::StrategyConfig::baseline_allgather(options.baseline_negatives);
    config.strategy.quant = core::QuantMode::kTwoBit;
    if (with_rs) config.strategy.selection = core::SelectionMode::kBernoulli;
    reports.push_back(bench::run_experiment(dataset, config));
  }

  std::size_t longest =
      std::max(reports[0].epoch_log.size(), reports[1].epoch_log.size());
  util::Table curve({"epoch", "2-bit TCA", "2-bit+RS TCA"});
  const std::size_t stride = std::max<std::size_t>(1, longest / 20);
  for (std::size_t epoch = 0; epoch < longest; epoch += stride) {
    curve.begin_row().add(static_cast<std::int64_t>(epoch));
    for (const auto& report : reports) {
      if (epoch < report.epoch_log.size()) {
        curve.add(report.epoch_log[epoch].val_accuracy, 1);
      } else {
        curve.add("-");
      }
    }
  }
  bench::emit(curve, "Figure 4 (reproduced): TCA vs epoch", options.csv);

  std::cout << "Finals: 2-bit TCA=" << reports[0].tca
            << " MRR=" << reports[0].ranking.mrr
            << " | 2-bit+RS TCA=" << reports[1].tca
            << " MRR=" << reports[1].ranking.mrr << "\n"
            << "Shape check: |delta TCA| = "
            << std::abs(reports[0].tca - reports[1].tca)
            << (std::abs(reports[0].tca - reports[1].tca) < 3.0
                    ? "  -> curves overlap (paper agrees)\n"
                    : "  -> curves diverge\n");
  const char* keys[] = {"twobit", "twobit_rs"};
  for (int v = 0; v < 2; ++v) {
    const std::string key = keys[v];
    reporter.count(key + ".epochs",
                   static_cast<std::uint64_t>(reports[v].epochs));
    reporter.set(key + ".tca", reports[v].tca);
    reporter.set(key + ".mrr", reports[v].ranking.mrr);
  }
  reporter.set("tca_delta", std::abs(reports[0].tca - reports[1].tca));
  reporter.flag("curves_overlap",
                std::abs(reports[0].tca - reports[1].tca) < 3.0);
  return reporter.write() ? 0 : 1;
}
