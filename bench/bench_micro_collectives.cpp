// Micro-benchmarks (google-benchmark) for the communication substrate:
// in-process collective throughput and the analytic cost-model evaluation.
// These measure the *simulator's* own overhead, not modeled network time.
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/communicator.hpp"
#include "harness/micro_main.hpp"

namespace {

using dynkge::comm::Cluster;
using dynkge::comm::Communicator;
using dynkge::comm::CostModel;

void BM_AllReduceSum(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t elems = static_cast<std::size_t>(state.range(1));
  Cluster cluster(ranks);
  for (auto _ : state) {
    cluster.run([&](Communicator& comm) {
      std::vector<float> data(elems, 1.0f);
      comm.allreduce_sum_inplace(data);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks * elems * sizeof(float));
}
BENCHMARK(BM_AllReduceSum)
    ->Args({2, 1 << 10})
    ->Args({4, 1 << 10})
    ->Args({8, 1 << 10})
    ->Args({4, 1 << 14});

void BM_AllGatherV(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  Cluster cluster(ranks);
  for (auto _ : state) {
    cluster.run([&](Communicator& comm) {
      std::vector<std::byte> local(bytes, std::byte{1});
      std::vector<std::byte> out;
      std::vector<std::size_t> counts;
      comm.allgatherv_bytes(local, out, counts);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks * bytes);
}
BENCHMARK(BM_AllGatherV)
    ->Args({2, 4 << 10})
    ->Args({4, 4 << 10})
    ->Args({8, 4 << 10});

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  Cluster cluster(ranks);
  for (auto _ : state) {
    cluster.run([&](Communicator& comm) {
      for (int i = 0; i < 100; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_CostModelAllReduce(benchmark::State& state) {
  const CostModel model;
  double acc = 0.0;
  for (auto _ : state) {
    for (int p = 2; p <= 16; p *= 2) {
      acc += model.allreduce_time(p, 1 << 20);
    }
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CostModelAllReduce);

}  // namespace

DYNKGE_MICRO_BENCH_MAIN("micro_collectives")
