// Ablation — where does the all-reduce/all-gather crossover sit, and how
// does it move with (a) the interconnect and (b) quantization? Pure
// cost-model analysis (no training): this is the mechanism behind
// strategies 1 and 3, isolated from learning dynamics.
#include <iostream>

#include "comm/cost_model.hpp"
#include "harness/harness.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace dynkge;

namespace {

/// Modeled per-step communication time for both transports given the
/// dense matrix size and the per-rank non-zero row volume. Pure alpha-beta
/// arithmetic, so the emitted metrics are exactly reproducible.
void crossover_table(const comm::CostModel& model, std::size_t dense_bytes,
                     std::size_t row_bytes, std::size_t rows_per_rank,
                     bench::BenchReporter& reporter, const std::string& prefix,
                     util::Table& table) {
  for (const int ranks : {2, 4, 8, 16, 32}) {
    const std::size_t per_rank = rows_per_rank * row_bytes;
    const double reduce = model.allreduce_time(ranks, dense_bytes);
    const double gather = model.allgatherv_time(
        ranks, per_rank * static_cast<std::size_t>(ranks), per_rank);
    table.begin_row()
        .add(ranks)
        .add(reduce * 1e3, 4)
        .add(gather * 1e3, 4)
        .add(gather < reduce ? "allgather" : "allreduce");
    const std::string key = prefix + ".r" + std::to_string(ranks);
    reporter.set(key + ".allreduce_ms", reduce * 1e3);
    reporter.set(key + ".allgather_ms", gather * 1e3);
    reporter.flag(key + ".allgather_wins", gather < reduce);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const bool csv = args.has_flag("csv");
  bench::BenchReporter reporter("ablation_cost_model", argc, argv);

  // FB250K-like dense entity gradient matrix: 240K rows x 200 floats.
  const std::size_t dense = 240000ull * 200ull * 4ull;
  const std::size_t raw_row = 4 + 200 * 4;       // id + float values
  const std::size_t quant_row = 4 + 4 + 200 / 8; // id + scale + sign bits
  const std::size_t rows = 30000;                // non-zero rows per rank

  std::cout << "Ablation: all-reduce/all-gather crossover (cost model only)\n"
            << "Dense matrix " << dense / (1 << 20) << " MiB, " << rows
            << " non-zero rows/rank of 200 floats\n\n";

  {
    util::Table table({"ranks", "allreduce ms", "allgather ms", "winner"});
    crossover_table(comm::CostModel(comm::CostModelParams::aries()), dense,
                    raw_row, rows, reporter, "aries.raw", table);
    table.print(std::cout, "Aries-like network, raw 32-bit rows:");
    if (csv) std::cout << table.to_csv();
  }
  {
    util::Table table({"ranks", "allreduce ms", "allgather ms", "winner"});
    crossover_table(comm::CostModel(comm::CostModelParams::aries()), dense,
                    quant_row, rows, reporter, "aries.quant", table);
    table.print(std::cout,
                "Aries-like network, 1-bit quantized rows (32x smaller — "
                "allgather wins everywhere, which is why the dynamic "
                "selector rarely picks allreduce after quantization):");
    if (csv) std::cout << table.to_csv();
  }
  {
    util::Table table({"ranks", "allreduce ms", "allgather ms", "winner"});
    crossover_table(comm::CostModel(comm::CostModelParams::ethernet()), dense,
                    raw_row, rows, reporter, "ethernet.raw", table);
    table.print(std::cout,
                "Commodity-Ethernet-like network, raw rows (higher alpha "
                "and beta shift the crossover):");
    if (csv) std::cout << table.to_csv();
  }
  return reporter.write() ? 0 : 1;
}
