// Table 4 + Figure 7 — negative sample selection with 1-bit quantization
// on 2 nodes: TT, N, MRR, TCA for ratios {1/1, 1/5, 1/10, 1/20, 1/30,
// 5/5, 10/10}.
//
// Expected shapes (paper): MRR grows with n for "1 out of n" and
// saturates; training time grows with n but stays far below "n out of n";
// "1 out of n" avoids the class imbalance that degrades "m out of m".
#include <iostream>

#include "harness/harness.hpp"
#include "harness/paper_reference.hpp"

using namespace dynkge;
namespace paper = dynkge::bench::paper;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {2});
  bench::BenchReporter reporter("table4_fig7_sample_selection", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Table 4 / Figure 7: negative sample selection (with 1-bit quant)",
      "for 1-out-of-n, MRR rises with n and saturates; time rises with n "
      "but stays well below n-out-of-n",
      options, dataset);

  util::Table table({"ratio", "TT(sim s)", "N", "MRR", "TCA",
                     "paper TT(h)", "paper N", "paper MRR", "paper TCA"});

  double tt_1of10 = 0.0, tt_10of10 = 0.0;
  double mrr_1of1 = 0.0, mrr_1of20 = 0.0;
  std::vector<std::pair<std::string, core::TrainReport>> curve_runs;
  for (const auto& row : paper::kTable4) {
    core::TrainConfig config =
        bench::make_config(options, static_cast<int>(options.nodes[0]));
    config.strategy = core::StrategyConfig::rs_1bit(row.sampled);
    config.strategy.negatives_used = row.used;
    const auto report = bench::run_experiment(dataset, config);
    const std::string key = "r" + std::to_string(row.used) + "_of_" +
                            std::to_string(row.sampled);
    reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
    reporter.count(key + ".epochs",
                   static_cast<std::uint64_t>(report.epochs));
    reporter.set(key + ".mrr", report.ranking.mrr);
    reporter.set(key + ".tca", report.tca);
    const std::string ratio = row.ratio;
    if (ratio == "1 out of 1" || ratio == "1 out of 10" ||
        ratio == "10 out of 10") {
      curve_runs.emplace_back(ratio, report);
    }
    table.begin_row()
        .add(row.ratio)
        .add(report.total_sim_seconds, 3)
        .add(static_cast<std::int64_t>(report.epochs))
        .add(report.ranking.mrr, 3)
        .add(report.tca, 1)
        .add(row.tt_hours, 2)
        .add(static_cast<std::int64_t>(row.epochs))
        .add(row.mrr, 3)
        .add(row.tca, 1);
    if (std::string(row.ratio) == "1 out of 10") {
      tt_1of10 = report.total_sim_seconds;
    }
    if (std::string(row.ratio) == "10 out of 10") {
      tt_10of10 = report.total_sim_seconds;
    }
    if (std::string(row.ratio) == "1 out of 1") mrr_1of1 = report.ranking.mrr;
    if (std::string(row.ratio) == "1 out of 20") {
      mrr_1of20 = report.ranking.mrr;
    }
  }
  bench::emit(table,
              "Table 4 (reproduced): sample selection with 1-bit, 2 nodes",
              options.csv);

  // Figure 7a: convergence curves for representative ratios.
  std::size_t longest = 0;
  for (const auto& [ratio, report] : curve_runs) {
    longest = std::max(longest, report.epoch_log.size());
  }
  util::Table curve(
      {"epoch", "1 of 1 TCA", "1 of 10 TCA", "10 of 10 TCA"});
  const std::size_t stride = std::max<std::size_t>(1, longest / 20);
  for (std::size_t epoch = 0; epoch < longest; epoch += stride) {
    curve.begin_row().add(static_cast<std::int64_t>(epoch));
    for (const auto& [ratio, report] : curve_runs) {
      if (epoch < report.epoch_log.size()) {
        curve.add(report.epoch_log[epoch].val_accuracy, 1);
      } else {
        curve.add("-");
      }
    }
  }
  bench::emit(curve, "Figure 7a (reproduced): convergence per ratio",
              options.csv);

  std::cout << "Shape checks:\n"
            << "  TT(1 of 10) < TT(10 of 10): " << tt_1of10 << " vs "
            << tt_10of10
            << (tt_1of10 < tt_10of10 ? "  -> holds (paper agrees)\n"
                                     : "  -> does not hold\n")
            << "  MRR(1 of 20) > MRR(1 of 1): " << mrr_1of20 << " vs "
            << mrr_1of1
            << (mrr_1of20 > mrr_1of1 ? "  -> holds (paper agrees)\n"
                                     : "  -> does not hold\n");
  reporter.flag("ss_time_win", tt_1of10 < tt_10of10);
  reporter.flag("mrr_rises_with_pool", mrr_1of20 > mrr_1of1);
  return reporter.write() ? 0 : 1;
}
