// Figure 5 — 1-bit vs 2-bit gradient quantization (both with random
// selection) on FB15K-like: (a) total training time and (b) MRR vs nodes.
// Also reproduces the section-4.3 scale-variant study (max / avg / negmax
// / posmax / negavg / posavg) that led the paper to pick `max`.
//
// Expected shapes (paper): 1-bit is faster than 2-bit at every node count;
// MRR is essentially the same for both; `max` is the best 1-bit scale.
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options =
      bench::parse_options(argc, argv, "fb15k", {1, 2, 4, 8});
  bench::BenchReporter reporter("fig5_quant_1bit_vs_2bit", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Figure 5: 1-bit vs 2-bit quantization (with random selection)",
      "1-bit beats 2-bit on training time with near-identical MRR; the "
      "max-of-absolute-values scale wins among 1-bit variants",
      options, dataset);

  util::Table table({"nodes", "1-bit TT(s)", "2-bit TT(s)", "1-bit MRR",
                     "2-bit MRR", "1-bit N", "2-bit N"});
  for (const std::int64_t nodes : options.nodes) {
    double tt[2], mrr[2];
    int epochs[2];
    for (const bool two_bit : {false, true}) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy = core::StrategyConfig::rs(options.baseline_negatives);
      config.strategy.quant =
          two_bit ? core::QuantMode::kTwoBit : core::QuantMode::kOneBit;
      const auto report = bench::run_experiment(dataset, config);
      tt[two_bit] = report.total_sim_seconds;
      mrr[two_bit] = report.ranking.mrr;
      epochs[two_bit] = report.epochs;
      const std::string key = "n" + std::to_string(nodes) + "." +
                              (two_bit ? "twobit" : "onebit");
      reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".mrr", report.ranking.mrr);
    }
    table.begin_row()
        .add(nodes)
        .add(tt[0], 3)
        .add(tt[1], 3)
        .add(mrr[0], 3)
        .add(mrr[1], 3)
        .add(static_cast<std::int64_t>(epochs[0]))
        .add(static_cast<std::int64_t>(epochs[1]));
  }
  bench::emit(table, "Figure 5 (reproduced): 1-bit vs 2-bit with RS",
              options.csv);

  // Section 4.3 variant study: which 1-bit scale statistic works best.
  struct Variant {
    const char* name;
    core::OneBitScale scale;
  };
  const Variant variants[] = {
      {"max", core::OneBitScale::kMax},     {"avg", core::OneBitScale::kMean},
      {"negmax", core::OneBitScale::kNegMax},
      {"posmax", core::OneBitScale::kPosMax},
      {"negavg", core::OneBitScale::kNegMean},
      {"posavg", core::OneBitScale::kPosMean},
  };
  util::Table variant_table({"1-bit scale", "N", "TCA", "MRR"});
  double best_mrr = -1.0;
  std::string best_name;
  for (const auto& variant : variants) {
    core::TrainConfig config = bench::make_config(options, 2);
    config.strategy = core::StrategyConfig::rs_1bit(options.baseline_negatives);
    config.strategy.one_bit_scale = variant.scale;
    const auto report = bench::run_experiment(dataset, config);
    variant_table.begin_row()
        .add(variant.name)
        .add(static_cast<std::int64_t>(report.epochs))
        .add(report.tca, 1)
        .add(report.ranking.mrr, 3);
    reporter.set(std::string("scale.") + variant.name + ".mrr",
                 report.ranking.mrr);
    if (report.ranking.mrr > best_mrr) {
      best_mrr = report.ranking.mrr;
      best_name = variant.name;
    }
  }
  bench::emit(variant_table,
              "Section 4.3 (reproduced): 1-bit scale variants on 2 nodes",
              options.csv);
  std::cout << "Best variant: " << best_name
            << (best_name == "max" ? " (paper agrees: max)\n"
                                   : " (paper picked max)\n");
  reporter.context("best_scale", best_name);
  reporter.flag("best_scale_is_max", best_name == "max");
  return reporter.write() ? 0 : 1;
}
