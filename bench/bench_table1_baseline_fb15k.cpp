// Table 1 — baseline ComplEx training on FB15K(-like): total training
// time, epochs, TCA and MRR for all-reduce vs all-gather over 1..8 nodes.
//
// Expected shape (paper): all-reduce beats all-gather at every node count
// on this small dataset (small gradient matrix -> low sparsity), epochs
// trend upward with node count, accuracy roughly flat.
#include <iostream>

#include "harness/harness.hpp"
#include "harness/paper_reference.hpp"

using namespace dynkge;
namespace paper = dynkge::bench::paper;

int main(int argc, char** argv) {
  const auto options =
      bench::parse_options(argc, argv, "fb15k", {1, 2, 4, 8});
  bench::BenchReporter reporter("table1_baseline_fb15k", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Table 1: baseline results on the FB15K-like dataset",
      "all-reduce is always faster than all-gather on the small dataset; "
      "epoch count grows with node count",
      options, dataset);

  util::Table table({"nodes", "method", "TT(sim s)", "N", "TCA", "MRR",
                     "paper TT(h)", "paper N", "paper TCA", "paper MRR"});

  for (const std::int64_t nodes : options.nodes) {
    const paper::BaselineRow* reference = nullptr;
    for (const auto& row : paper::kTable1Fb15k) {
      if (row.nodes == nodes) reference = &row;
    }
    for (const bool allgather : {false, true}) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy =
          allgather
              ? core::StrategyConfig::baseline_allgather(
                    options.baseline_negatives)
              : core::StrategyConfig::baseline_allreduce(
                    options.baseline_negatives);
      const auto report = bench::run_experiment(dataset, config);
      const std::string key = "n" + std::to_string(nodes) + "." +
                              (allgather ? "allgather" : "allreduce");
      reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".tca", report.tca);
      reporter.set(key + ".mrr", report.ranking.mrr);
      table.begin_row()
          .add(nodes)
          .add(report.strategy_label)
          .add(report.total_sim_seconds, 3)
          .add(static_cast<std::int64_t>(report.epochs))
          .add(report.tca, 1)
          .add(report.ranking.mrr, 3);
      if (reference != nullptr) {
        table.add(allgather ? reference->allgather_tt_hours
                            : reference->allreduce_tt_hours,
                  2)
            .add(static_cast<std::int64_t>(allgather
                                               ? reference->allgather_epochs
                                               : reference->allreduce_epochs))
            .add(allgather ? reference->allgather_tca
                           : reference->allreduce_tca,
                 1)
            .add(allgather ? reference->allgather_mrr
                           : reference->allreduce_mrr,
                 2);
      } else {
        table.add("-").add("-").add("-").add("-");
      }
    }
  }

  bench::emit(table, "Table 1 (reproduced): FB15K-like baseline",
              options.csv);
  return reporter.write() ? 0 : 1;
}
