// Training-kernel regression bench: scalar reference path vs the blocked
// kernels (batched scoring, GradWork gradient blocks, blocked Adam) on the
// FB250K stand-in at 8 simulated ranks.
//
// Two configurations bracket the hot path:
//   baseline  — all-reduce, 1 negative per positive (paper's FB250K
//               baseline): gradient accumulation + Adam dominate.
//   combined  — DRS + 1-bit + RP + SS 1:5 (the paper's best stack):
//               hard-negative candidate scoring dominates, which is the
//               forward path the blocked kernels batch.
//
// For each configuration both paths train the same job; the bench asserts
// the final models are byte-identical (the blocked path's core contract)
// and reports epoch throughput as positives retired per compute-CPU
// second — CPU time, not wall time, so the number means the same thing on
// a loaded CI runner and a quiet laptop.
//
// --bench-json <file> writes the machine-readable results consumed by
// tools/check_bench.py (the CI gate against BENCH_train.baseline.json).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/harness.hpp"
#include "util/argparse.hpp"
#include "util/json_writer.hpp"

using namespace dynkge;

namespace {

struct PathResult {
  double compute_cpu_seconds = 0.0;
  double wall_seconds = 0.0;
  int epochs = 0;
  double throughput = 0.0;  ///< positives / compute-CPU-second
  core::TrainReport report;
};

PathResult run_path(const kge::Dataset& dataset, core::TrainConfig config,
                    bool block_kernels) {
  config.block_kernels = block_kernels;
  PathResult result;
  result.report = bench::run_experiment(dataset, std::move(config));
  result.compute_cpu_seconds = result.report.compute_cpu_seconds;
  result.wall_seconds = result.report.wall_seconds;
  result.epochs = result.report.epochs;
  const double positives =
      static_cast<double>(dataset.train().size()) * result.epochs;
  result.throughput = result.compute_cpu_seconds > 0.0
                          ? positives / result.compute_cpu_seconds
                          : 0.0;
  return result;
}

bool models_identical(const kge::KgeModel& a, const kge::KgeModel& b) {
  const auto ea = a.entities().flat();
  const auto eb = b.entities().flat();
  const auto ra = a.relations().flat();
  const auto rb = b.relations().flat();
  return ea.size() == eb.size() && ra.size() == rb.size() &&
         std::memcmp(ea.data(), eb.data(), ea.size_bytes()) == 0 &&
         std::memcmp(ra.data(), rb.data(), ra.size_bytes()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::parse_options(argc, argv, "fb250k", {8});
  const util::ArgParser extra(argc, argv);
  const std::string bench_json = extra.get_string("bench-json", "");
  // Fixed short runs: throughput needs identical work per path, not
  // convergence. Overridable the usual way (--max-epochs / --rank).
  if (!extra.has_flag("max-epochs")) options.max_epochs = 4;
  if (!extra.has_flag("rank")) options.rank = 32;
  // Default to the acceptance regime: fb250k_mini at 8 simulated ranks.
  if (!extra.has_flag("scale")) options.scale = "mini";

  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Training kernels: scalar reference vs blocked (batched) hot path",
      "blocked kernels change throughput only — final embeddings are "
      "byte-identical to the scalar path under every strategy",
      options, dataset);

  const int ranks = static_cast<int>(options.nodes.back());
  struct Config {
    const char* name;
    core::StrategyConfig strategy;
  };
  const Config configs[] = {
      {"baseline",
       core::StrategyConfig::baseline_allreduce(options.baseline_negatives)},
      {"combined",
       core::StrategyConfig::drs_1bit_rp_ss(options.ss_sampled,
                                            options.ss_used)},
  };

  util::Table table({"config", "path", "epochs", "compute_cpu_s",
                     "positives_per_cpu_s", "speedup", "byte_identical"});
  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("train");
  json.key("dataset").value(options.dataset + "/" + options.scale);
  json.key("nodes").value(static_cast<std::int64_t>(ranks));
  json.key("rank").value(static_cast<std::int64_t>(options.rank));

  bool all_identical = true;
  for (const Config& config : configs) {
    core::TrainConfig train = bench::make_config(options, ranks);
    train.strategy = config.strategy;
    train.max_epochs = options.max_epochs;
    // Plateau stops would let the two paths retire different epoch counts
    // on measurement noise; pin the work instead.
    train.lr.tolerance = options.max_epochs + 1;
    train.compute_final_metrics = false;
    train.valid_max_triples = 50;

    const PathResult scalar = run_path(dataset, train, false);
    const PathResult blocked = run_path(dataset, train, true);
    const bool identical =
        models_identical(*scalar.report.model, *blocked.report.model);
    all_identical = all_identical && identical;
    const double speedup = scalar.compute_cpu_seconds > 0.0
                               ? scalar.compute_cpu_seconds /
                                     blocked.compute_cpu_seconds
                               : 0.0;

    table.begin_row()
        .add(config.name)
        .add("scalar")
        .add(static_cast<std::int64_t>(scalar.epochs))
        .add(scalar.compute_cpu_seconds, 3)
        .add(scalar.throughput, 0)
        .add(1.0, 2)
        .add(identical ? "yes" : "NO");
    table.begin_row()
        .add(config.name)
        .add("blocked")
        .add(static_cast<std::int64_t>(blocked.epochs))
        .add(blocked.compute_cpu_seconds, 3)
        .add(blocked.throughput, 0)
        .add(speedup, 2)
        .add(identical ? "yes" : "NO");

    json.key(config.name).begin_object();
    json.key("scalar_cpu_seconds").value(scalar.compute_cpu_seconds);
    json.key("blocked_cpu_seconds").value(blocked.compute_cpu_seconds);
    json.key("scalar_throughput").value(scalar.throughput);
    json.key("blocked_throughput").value(blocked.throughput);
    json.key("speedup").value(speedup);
    json.key("epochs").value(static_cast<std::int64_t>(blocked.epochs));
    json.key("byte_identical").value(identical);
    json.end_object();
  }
  json.key("byte_identical").value(all_identical);
  json.end_object();

  bench::emit(table, "Scalar vs blocked training kernels", options.csv);

  if (!bench_json.empty()) {
    std::ofstream out(bench_json);
    out << json.str() << "\n";
    if (!out) {
      std::fprintf(stderr, "[bench] failed to write %s\n",
                   bench_json.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s\n", bench_json.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "[bench] FAIL: blocked path diverged from the scalar "
                 "reference\n");
    return 1;
  }
  return 0;
}
