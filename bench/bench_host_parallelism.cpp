// Ablation — host thread pool sizing for the simulated cluster.
//
// The simulated cluster's P rank programs are co-scheduled on a shared
// host thread pool (util::ThreadPool::run_cohort). The pool size is a
// pure wall-clock knob: the trained model, epoch log, and the modeled
// sim_seconds must stay bit-identical for any host_threads >= 1. This
// bench sweeps host_threads for a fixed 8-rank configuration and reports
// wall time, the rank compute it overlapped, and the resulting host-side
// speedup (compute CPU seconds / wall seconds — the honest metric even
// on a 1-core host, where wall-clock speedup is unobservable).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/harness.hpp"
#include "util/thread_pool.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {8});
  bench::BenchReporter reporter("host_parallelism", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Ablation: host thread pool size for a fixed simulated cluster",
      "host_threads changes wall time only; epochs, losses and the final "
      "model are bit-identical at every pool size (sim_s still contains "
      "measured thread-CPU compute, so it jitters like any measurement)",
      options, dataset);

  const int ranks = static_cast<int>(options.nodes.back());
  const unsigned hardware = util::ThreadPool::hardware_threads();
  std::printf("# %d simulated ranks on a host with %u hardware thread(s)\n\n",
              ranks, hardware);

  util::Table table({"host_threads", "wall_s", "compute_cpu_s",
                     "host_speedup", "sim_s", "N", "mean_loss_last"});
  std::vector<int> sweep;
  for (const int candidate : {1, 2, static_cast<int>(hardware),
                              2 * static_cast<int>(hardware)}) {
    if (std::find(sweep.begin(), sweep.end(), candidate) == sweep.end()) {
      sweep.push_back(candidate);
    }
  }
  int baseline_epochs = 0;
  double baseline_loss = 0.0;
  bool deterministic = true;
  double best_speedup = 0.0;
  for (const int host_threads : sweep) {
    core::TrainConfig config = bench::make_config(options, ranks);
    config.strategy =
        core::StrategyConfig::rs_1bit(options.baseline_negatives);
    config.host_threads = host_threads;
    const auto report = bench::run_experiment(dataset, config);
    table.begin_row()
        .add(static_cast<std::int64_t>(report.host_threads))
        .add(report.wall_seconds, 3)
        .add(report.compute_cpu_seconds, 3)
        .add(report.host_speedup(), 2)
        .add(report.total_sim_seconds, 3)
        .add(static_cast<std::int64_t>(report.epochs))
        .add(report.epoch_log.back().mean_loss, 6);
    // Compare the deterministic outputs only: the epoch count and the loss
    // trajectory. sim_s is excluded on purpose — it embeds measured
    // thread-CPU time, which jitters between any two runs.
    if (baseline_epochs == 0) {
      baseline_epochs = report.epochs;
      baseline_loss = report.epoch_log.back().mean_loss;
    } else if (report.epochs != baseline_epochs ||
               report.epoch_log.back().mean_loss != baseline_loss) {
      deterministic = false;
      std::fprintf(stderr,
                   "[bench] WARNING: host_threads=%d perturbed the "
                   "simulation — determinism violation\n",
                   host_threads);
    }
    best_speedup = std::max(best_speedup, report.host_speedup());
  }
  bench::emit(table,
              "Host pool sweep (results identical, wall time varies)",
              options.csv);
  // Only pool-size-independent outputs are gateable: the sweep itself
  // depends on the host's hardware-thread count.
  reporter.flag("deterministic_across_pool_sizes", deterministic);
  reporter.count("epochs", static_cast<std::uint64_t>(baseline_epochs));
  reporter.set("final_mean_loss", baseline_loss);
  reporter.set("best_host_speedup", best_speedup);
  return reporter.write() ? 0 : 1;
}
