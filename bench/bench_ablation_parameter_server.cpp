// Ablation — the paper's introduction motivates synchronous collectives
// by the parameter-server approach's server bottleneck ("communication
// bottleneck to the server ... all-to-all communication pattern that is
// not efficient"). This bench trains the same workload through all three
// transports and shows the PS epoch time growing with the worker count
// while the collective transports scale.
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options =
      bench::parse_options(argc, argv, "fb250k", {2, 4, 8, 16});
  bench::BenchReporter reporter("ablation_parameter_server", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Ablation: parameter server vs synchronous collectives",
      "the PS server link carries every worker's gradients, so its epoch "
      "time grows with the node count while ring all-reduce saturates",
      options, dataset);

  util::Table table({"nodes", "PS s/epoch", "allreduce s/epoch",
                     "allgather s/epoch", "PS comm s/epoch",
                     "allreduce comm s/epoch"});
  for (const std::int64_t nodes : options.nodes) {
    double epoch_time[3], comm_time[3];
    int idx = 0;
    for (const core::StrategyConfig& strategy :
         {core::StrategyConfig::baseline_parameter_server(
              options.baseline_negatives),
          core::StrategyConfig::baseline_allreduce(
              options.baseline_negatives),
          core::StrategyConfig::baseline_allgather(
              options.baseline_negatives)}) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy = strategy;
      // Fixed-length runs: isolate the per-epoch communication pattern
      // from convergence differences.
      config.max_epochs = 12;
      config.lr.tolerance = 100;
      config.compute_final_metrics = false;
      const auto report = bench::run_experiment(dataset, config);
      epoch_time[idx] = report.mean_epoch_seconds();
      double comm = 0.0;
      for (const auto& record : report.epoch_log) {
        comm += record.comm_seconds;
      }
      comm_time[idx] = comm / report.epochs;
      ++idx;
    }
    const std::string key = "n" + std::to_string(nodes);
    const char* transports[] = {"param_server", "allreduce", "allgather"};
    for (int t = 0; t < 3; ++t) {
      reporter.set(key + "." + transports[t] + ".epoch_seconds",
                   epoch_time[t]);
      reporter.set(key + "." + transports[t] + ".comm_seconds",
                   comm_time[t]);
    }
    table.begin_row()
        .add(nodes)
        .add(epoch_time[0], 4)
        .add(epoch_time[1], 4)
        .add(epoch_time[2], 4)
        .add(comm_time[0], 4)
        .add(comm_time[1], 4);
  }
  bench::emit(table,
              "Parameter-server bottleneck (per-epoch seconds, fixed 12 "
              "epochs)",
              options.csv);
  return reporter.write() ? 0 : 1;
}
