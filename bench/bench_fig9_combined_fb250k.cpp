// Figure 9 — all methods on FB250K-like over 1..16 nodes:
//   {allreduce, allgather, DRS, DRS+1-bit, DRS+1-bit+RP+SS}
//   (a) total training time, (b) epochs, (c) MRR.
//
// Expected shapes (paper): every dynamic method beats both baselines on
// time; the combined method wins at small node counts and ties DRS+1-bit
// at large ones; MRR of DRS / DRS+1-bit degrades with node count while
// the combined method holds it up (+17.5% average); after quantization
// the dynamic selector runs ~60% fewer all-reduce epochs.
#include <iostream>

#include "harness/harness.hpp"
#include "harness/paper_reference.hpp"

using namespace dynkge;
namespace paper = dynkge::bench::paper;

int main(int argc, char** argv) {
  const auto options =
      bench::parse_options(argc, argv, "fb250k", {1, 2, 4, 8, 16});
  bench::BenchReporter reporter("fig9_combined_fb250k", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Figure 9: combined methods on FB250K-like",
      "DRS+1-bit+RP+SS gives the largest time cuts and holds MRR up while "
      "plain quantization degrades it at scale",
      options, dataset);

  struct Method {
    const char* name;
    const char* key;  ///< metric-name slug for the --bench-json block
    core::StrategyConfig strategy;
  };
  const std::vector<Method> methods = {
      {"allreduce", "allreduce",
       core::StrategyConfig::baseline_allreduce(options.baseline_negatives)},
      {"allgather", "allgather",
       core::StrategyConfig::baseline_allgather(options.baseline_negatives)},
      {"DRS", "drs", core::StrategyConfig::drs(options.baseline_negatives)},
      {"DRS+1-bit", "drs_1bit",
       core::StrategyConfig::drs_1bit(options.baseline_negatives)},
      {"DRS+1-bit+RP+SS", "drs_1bit_rp_ss",
       core::StrategyConfig::drs_1bit_rp_ss(options.ss_sampled,
                                            options.ss_used)},
  };

  util::Table tt({"nodes", "allreduce", "allgather", "DRS", "DRS+1-bit",
                  "DRS+1-bit+RP+SS"});
  util::Table epochs = tt;
  util::Table mrr = tt;

  double combined_tt_sum = 0.0, allreduce_tt_sum = 0.0;
  double combined_mrr_sum = 0.0, allreduce_mrr_sum = 0.0;
  double drs_allreduce_fraction = 0.0, drs_1bit_allreduce_fraction = 0.0;
  int fraction_samples = 0;

  for (const std::int64_t nodes : options.nodes) {
    tt.begin_row().add(nodes);
    epochs.begin_row().add(nodes);
    mrr.begin_row().add(nodes);
    for (const auto& method : methods) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy = method.strategy;
      const auto report = bench::run_experiment(dataset, config);
      tt.add(report.total_sim_seconds, 3);
      epochs.add(static_cast<std::int64_t>(report.epochs));
      mrr.add(report.ranking.mrr, 3);
      const std::string key =
          "n" + std::to_string(nodes) + "." + method.key;
      reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".mrr", report.ranking.mrr);
      if (std::string(method.name) == "allreduce") {
        allreduce_tt_sum += report.total_sim_seconds;
        allreduce_mrr_sum += report.ranking.mrr;
      }
      if (std::string(method.name) == "DRS+1-bit+RP+SS") {
        combined_tt_sum += report.total_sim_seconds;
        combined_mrr_sum += report.ranking.mrr;
      }
      if (nodes > 1) {
        if (std::string(method.name) == "DRS") {
          drs_allreduce_fraction += report.allreduce_fraction;
          ++fraction_samples;
        }
        if (std::string(method.name) == "DRS+1-bit") {
          drs_1bit_allreduce_fraction += report.allreduce_fraction;
        }
      }
    }
  }

  bench::emit(tt, "Figure 9a (reproduced): total training time (sim s)",
              options.csv);
  bench::emit(epochs, "Figure 9b (reproduced): epochs to convergence",
              options.csv);
  bench::emit(mrr, "Figure 9c (reproduced): MRR", options.csv);

  const double time_reduction =
      100.0 * (1.0 - combined_tt_sum / allreduce_tt_sum);
  const double mrr_gain =
      100.0 * (combined_mrr_sum / allreduce_mrr_sum - 1.0);
  std::cout << "Summary vs all-reduce baseline (averaged over node counts):\n"
            << "  training-time reduction: " << time_reduction
            << "%  (paper: " << paper::kFb250kTimeReductionPct << "%)\n"
            << "  MRR change: " << mrr_gain << "%  (paper: +"
            << paper::kFb250kMrrGainPct << "%)\n";
  if (fraction_samples > 0) {
    const double drs_frac = drs_allreduce_fraction / fraction_samples;
    const double quant_frac = drs_1bit_allreduce_fraction / fraction_samples;
    std::cout << "Dynamic-selector all-reduce share (multi-node mean): DRS="
              << drs_frac << " DRS+1-bit=" << quant_frac
              << "  (paper section 4.3: quantization cuts all-reduce "
                 "communications ~"
              << paper::kAllReduceReductionPct << "%)\n";
    reporter.set("drs_allreduce_fraction", drs_frac);
    reporter.set("drs_1bit_allreduce_fraction", quant_frac);
  }
  reporter.set("time_reduction_pct", time_reduction);
  reporter.set("mrr_gain_pct", mrr_gain);
  reporter.flag("combined_saves_time", time_reduction > 0.0);
  return reporter.write() ? 0 : 1;
}
