// Figure 6 — relation partition on top of RS + 1-bit quantization:
//   (a) convergence (TCA vs epoch) with vs without partition on FB15K-like
//   (b) epoch time vs nodes with vs without partition on FB250K-like
//
// Expected shapes (paper): with partition the convergence curve improves
// (relation gradients stay full precision, unquantized), and the epoch
// time gap grows with the node count (one collective eliminated).
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fig6_relation_partition", argc, argv);
  // (a) convergence on FB15K-like, 2 nodes.
  {
    const auto options = bench::parse_options(argc, argv, "fb15k", {2});
    const kge::Dataset dataset = bench::make_dataset(options);
    bench::print_banner(
        "Figure 6a: relation partition - convergence on FB15K-like",
        "RS+1-bit converges better once relation gradients stay local and "
        "full precision",
        options, dataset);

    std::vector<core::TrainReport> reports;
    for (const bool with_rp : {false, true}) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(options.nodes[0]));
      config.strategy =
          core::StrategyConfig::rs_1bit(options.baseline_negatives);
      config.strategy.relation_partition = with_rp;
      reports.push_back(bench::run_experiment(dataset, config));
    }
    const std::size_t longest =
        std::max(reports[0].epoch_log.size(), reports[1].epoch_log.size());
    util::Table curve({"epoch", "without partition TCA", "with partition TCA"});
    const std::size_t stride = std::max<std::size_t>(1, longest / 20);
    for (std::size_t epoch = 0; epoch < longest; epoch += stride) {
      curve.begin_row().add(static_cast<std::int64_t>(epoch));
      for (const auto& report : reports) {
        if (epoch < report.epoch_log.size()) {
          curve.add(report.epoch_log[epoch].val_accuracy, 1);
        } else {
          curve.add("-");
        }
      }
    }
    bench::emit(curve, "Figure 6a (reproduced): TCA vs epoch", options.csv);
    std::cout << "Finals: without RP TCA=" << reports[0].tca
              << " MRR=" << reports[0].ranking.mrr
              << " | with RP TCA=" << reports[1].tca
              << " MRR=" << reports[1].ranking.mrr << "\n\n";
    reporter.context_from(options);
    const char* keys[] = {"fb15k.without_rp", "fb15k.with_rp"};
    for (int v = 0; v < 2; ++v) {
      const std::string key = keys[v];
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(reports[v].epochs));
      reporter.set(key + ".tca", reports[v].tca);
      reporter.set(key + ".mrr", reports[v].ranking.mrr);
    }
  }

  // (b) epoch time vs nodes on FB250K-like.
  {
    const auto options =
        bench::parse_options(argc, argv, "fb250k", {1, 2, 4, 8, 16});
    const kge::Dataset dataset = bench::make_dataset(options);
    bench::print_banner(
        "Figure 6b: relation partition - epoch time on FB250K-like",
        "the epoch-time saving from eliminating the relation collective "
        "grows with the node count",
        options, dataset);
    util::Table table({"nodes", "without RP s/epoch", "with RP s/epoch",
                       "saving %"});
    for (const std::int64_t nodes : options.nodes) {
      double epoch_time[2];
      for (const bool with_rp : {false, true}) {
        core::TrainConfig config =
            bench::make_config(options, static_cast<int>(nodes));
        config.strategy =
            core::StrategyConfig::rs_1bit(options.baseline_negatives);
        config.strategy.relation_partition = with_rp;
        const auto report = bench::run_experiment(dataset, config);
        epoch_time[with_rp] = report.mean_epoch_seconds();
      }
      const std::string key = "fb250k.n" + std::to_string(nodes);
      reporter.set(key + ".without_rp.epoch_seconds", epoch_time[0]);
      reporter.set(key + ".with_rp.epoch_seconds", epoch_time[1]);
      reporter.set(key + ".saving_pct",
                   100.0 * (epoch_time[0] - epoch_time[1]) /
                       std::max(1e-12, epoch_time[0]));
      table.begin_row()
          .add(nodes)
          .add(epoch_time[0], 4)
          .add(epoch_time[1], 4)
          .add(100.0 * (epoch_time[0] - epoch_time[1]) /
                   std::max(1e-12, epoch_time[0]),
               1);
    }
    bench::emit(table, "Figure 6b (reproduced): epoch time vs nodes",
                options.csv);
  }
  return reporter.write() ? 0 : 1;
}
