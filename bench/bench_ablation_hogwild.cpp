// Ablation — shared-memory lock-free training (the related-work approach
// of Zhang et al. / ParaGraphE) against the paper's synchronous
// distributed training, on the same workload.
//
// Hogwild scales only within one node's cores and trades determinism for
// synchronization-free updates; the distributed trainer is deterministic
// and scales across nodes at the price of communication. This bench
// reports convergence quality for both at matching parallelism.
#include <iostream>

#include "core/hogwild_trainer.hpp"
#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {1, 2, 4});
  bench::BenchReporter reporter("ablation_hogwild", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Ablation: Hogwild shared-memory baseline vs synchronous distributed",
      "lock-free shared-memory training reaches comparable accuracy within "
      "one node but offers no path across nodes",
      options, dataset);

  util::Table table({"parallelism", "mode", "N", "TCA", "MRR",
                     "deterministic"});
  for (const std::int64_t parallelism : options.nodes) {
    {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(parallelism));
      config.strategy =
          core::StrategyConfig::baseline_allreduce(options.baseline_negatives);
      const auto report = bench::run_experiment(dataset, config);
      table.begin_row()
          .add(parallelism)
          .add("distributed (allreduce)")
          .add(static_cast<std::int64_t>(report.epochs))
          .add(report.tca, 1)
          .add(report.ranking.mrr, 3)
          .add("yes");
      const std::string key =
          "distributed.p" + std::to_string(parallelism);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".tca", report.tca);
      reporter.set(key + ".mrr", report.ranking.mrr);
    }
    {
      core::HogwildConfig config;
      config.embedding_rank = options.rank;
      config.num_threads = static_cast<int>(parallelism);
      config.negatives = options.baseline_negatives;
      config.max_epochs = options.max_epochs;
      config.lr.base_lr = 5.0 * options.base_lr;  // plain SGD step size
      config.lr.max_scale = 1;
      config.lr.tolerance = options.tolerance;
      config.seed = options.seed;
      const auto report = core::HogwildTrainer(dataset, config).train();
      std::fprintf(stderr, "[bench] hogwild x%d N=%d TCA=%.1f MRR=%.3f\n",
                   report.num_threads, report.epochs, report.tca,
                   report.ranking.mrr);
      table.begin_row()
          .add(parallelism)
          .add("hogwild (shared memory)")
          .add(static_cast<std::int64_t>(report.epochs))
          .add(report.tca, 1)
          .add(report.ranking.mrr, 3)
          .add(parallelism == 1 ? "yes" : "no (racy)");
      // Hogwild at >1 thread is racy by design: only the single-thread
      // series is deterministic enough to gate.
      const std::string key = "hogwild.p" + std::to_string(parallelism);
      reporter.set(key + ".tca", report.tca);
      reporter.set(key + ".mrr", report.ranking.mrr);
    }
  }
  bench::emit(table, "Hogwild vs distributed at matched parallelism",
              options.csv);
  return reporter.write() ? 0 : 1;
}
