// Table 2 — baseline ComplEx training on FB250K(-like): total training
// time, epochs, TCA and MRR for all-reduce vs all-gather over 1..16 nodes.
//
// Expected shape (paper): all-gather wins up to ~4 nodes, all-reduce wins
// beyond (the gathered row volume grows with node count while the dense
// all-reduce volume saturates); epochs grow with node count.
#include <iostream>

#include "harness/harness.hpp"
#include "harness/paper_reference.hpp"

using namespace dynkge;
namespace paper = dynkge::bench::paper;

int main(int argc, char** argv) {
  const auto options =
      bench::parse_options(argc, argv, "fb250k", {1, 2, 4, 8, 16});
  bench::BenchReporter reporter("table2_baseline_fb250k", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Table 2: baseline results on the FB250K-like dataset",
      "all-gather wins at <=4 nodes, all-reduce wins at >=8 nodes "
      "(communication-volume crossover); epochs grow with node count",
      options, dataset);

  util::Table table({"nodes", "method", "TT(sim s)", "N", "TCA", "MRR",
                     "paper TT(h)", "paper N", "paper TCA", "paper MRR"});

  double crossover_check[2][2] = {{0, 0}, {0, 0}};  // [small/large][ar/ag]
  for (const std::int64_t nodes : options.nodes) {
    const paper::BaselineRow* reference = nullptr;
    for (const auto& row : paper::kTable2Fb250k) {
      if (row.nodes == nodes) reference = &row;
    }
    for (const bool allgather : {false, true}) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy =
          allgather
              ? core::StrategyConfig::baseline_allgather(
                    options.baseline_negatives)
              : core::StrategyConfig::baseline_allreduce(
                    options.baseline_negatives);
      const auto report = bench::run_experiment(dataset, config);
      const std::string key = "n" + std::to_string(nodes) + "." +
                              (allgather ? "allgather" : "allreduce");
      reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".tca", report.tca);
      reporter.set(key + ".mrr", report.ranking.mrr);
      table.begin_row()
          .add(nodes)
          .add(report.strategy_label)
          .add(report.total_sim_seconds, 3)
          .add(static_cast<std::int64_t>(report.epochs))
          .add(report.tca, 1)
          .add(report.ranking.mrr, 3);
      if (reference != nullptr) {
        table.add(allgather ? reference->allgather_tt_hours
                            : reference->allreduce_tt_hours,
                  2)
            .add(static_cast<std::int64_t>(allgather
                                               ? reference->allgather_epochs
                                               : reference->allreduce_epochs))
            .add(allgather ? reference->allgather_tca
                           : reference->allreduce_tca,
                 1)
            .add(allgather ? reference->allgather_mrr
                           : reference->allreduce_mrr,
                 2);
      } else {
        table.add("-").add("-").add("-").add("-");
      }
      if (nodes == 2) crossover_check[0][allgather] = report.mean_epoch_seconds();
      if (nodes == options.nodes.back()) {
        crossover_check[1][allgather] = report.mean_epoch_seconds();
      }
    }
  }

  bench::emit(table, "Table 2 (reproduced): FB250K-like baseline",
              options.csv);
  std::cout << "Crossover check (mean epoch seconds):\n"
            << "  2 nodes:  allreduce=" << crossover_check[0][0]
            << "  allgather=" << crossover_check[0][1]
            << (crossover_check[0][1] < crossover_check[0][0]
                    ? "  -> allgather wins (paper agrees)\n"
                    : "  -> allreduce wins\n")
            << "  " << options.nodes.back()
            << " nodes: allreduce=" << crossover_check[1][0]
            << "  allgather=" << crossover_check[1][1]
            << (crossover_check[1][0] < crossover_check[1][1]
                    ? "  -> allreduce wins (paper agrees)\n"
                    : "  -> allgather wins\n");
  reporter.flag("allgather_wins_at_2_nodes",
                crossover_check[0][1] < crossover_check[0][0]);
  reporter.flag("allreduce_wins_at_max_nodes",
                crossover_check[1][0] < crossover_check[1][1]);
  return reporter.write() ? 0 : 1;
}
