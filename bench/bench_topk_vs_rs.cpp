// Top-K vs random selection at equal kept-bytes on the FB15K-like
// dataset: convergence (validation TCA per epoch) and final ranking
// quality.
//
// Expected shape: entity-wise Top-K with error feedback matches or beats
// random selection when both keep the same number of entity rows per
// step, because Top-K spends the same wire budget on the rows with the
// largest accumulated gradient mass instead of a uniform sample.
//
// The kept-bytes budget is calibrated, not assumed: the RS run goes
// first, its mean kept rows per step is read back from the epoch log,
// and the Top-K run sets --topk-k to that row count. Both variants use
// the same all-gather transport and raw codec, so equal rows per step is
// equal bytes per step.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

namespace {

/// Mean entity rows this rank shipped per step, over the whole run.
double mean_rows_sent(const core::TrainReport& report) {
  if (report.epoch_log.empty()) return 0.0;
  double total = 0.0;
  for (const auto& epoch : report.epoch_log) total += epoch.rows_sent;
  return total / static_cast<double>(report.epoch_log.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {2});
  bench::BenchReporter reporter("topk_vs_rs", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Top-K vs random selection at equal kept-bytes",
      "entity-wise Top-K with error feedback matches random selection's "
      "convergence while spending the same bytes on the wire",
      options, dataset);

  const int nodes = static_cast<int>(options.nodes[0]);

  // Random selection first: it defines the kept-bytes budget.
  core::TrainConfig rs_config = bench::make_config(options, nodes);
  rs_config.strategy = core::StrategyConfig::rs(options.baseline_negatives);
  rs_config.strategy.selection_residual = true;
  const core::TrainReport rs = bench::run_experiment(dataset, rs_config);

  const double rs_rows = mean_rows_sent(rs);
  const int topk_k = std::max(1, static_cast<int>(std::lround(rs_rows)));

  core::TrainConfig topk_config = bench::make_config(options, nodes);
  topk_config.strategy =
      core::StrategyConfig::topk(topk_k, options.baseline_negatives);
  const core::TrainReport topk = bench::run_experiment(dataset, topk_config);
  const double topk_rows = mean_rows_sent(topk);

  const std::size_t longest =
      std::max(rs.epoch_log.size(), topk.epoch_log.size());
  util::Table curve({"epoch", "RS TCA", "TopK TCA"});
  const std::size_t stride = std::max<std::size_t>(1, longest / 20);
  for (std::size_t epoch = 0; epoch < longest; epoch += stride) {
    curve.begin_row().add(static_cast<std::int64_t>(epoch));
    for (const core::TrainReport* report : {&rs, &topk}) {
      if (epoch < report->epoch_log.size()) {
        curve.add(report->epoch_log[epoch].val_accuracy, 1);
      } else {
        curve.add("-");
      }
    }
  }
  bench::emit(curve, "Top-K vs RS at equal kept-bytes: TCA vs epoch",
              options.csv);

  // Equal rows per step == equal bytes per step (same transport/codec),
  // so the ratio doubles as the budget-parity check.
  const double rows_ratio = rs_rows > 0.0 ? topk_rows / rs_rows : 0.0;
  std::cout << "Budget: RS mean rows/step=" << rs_rows
            << " -> topk_k=" << topk_k
            << " (TopK mean rows/step=" << topk_rows << ")\n"
            << "Finals: RS TCA=" << rs.tca << " MRR=" << rs.ranking.mrr
            << " | TopK TCA=" << topk.tca << " MRR=" << topk.ranking.mrr
            << (topk.ranking.mrr >= rs.ranking.mrr
                    ? "  -> TopK >= RS at equal kept-bytes\n"
                    : "  -> TopK fell below RS\n");

  const core::TrainReport* reports[] = {&rs, &topk};
  const char* keys[] = {"rs", "topk"};
  for (int v = 0; v < 2; ++v) {
    const std::string key = keys[v];
    reporter.count(key + ".epochs",
                   static_cast<std::uint64_t>(reports[v]->epochs));
    reporter.set(key + ".tca", reports[v]->tca);
    reporter.set(key + ".mrr", reports[v]->ranking.mrr);
  }
  reporter.set("rs.mean_rows_sent", rs_rows);
  reporter.set("topk.mean_rows_sent", topk_rows);
  reporter.count("topk_k", static_cast<std::uint64_t>(topk_k));
  reporter.set("kept_rows_ratio", rows_ratio);
  reporter.flag("kept_bytes_matched", std::abs(rows_ratio - 1.0) < 0.10);
  reporter.flag("topk_mrr_ge_rs", topk.ranking.mrr >= rs.ranking.mrr);
  return reporter.write() ? 0 : 1;
}
