// Micro-benchmarks (google-benchmark) for the gradient row codecs: encode
// and decode throughput per quantization mode and row width.
#include <benchmark/benchmark.h>

#include "harness/micro_main.hpp"

#include <vector>

#include "core/quantize.hpp"

namespace {

using dynkge::core::OneBitScale;
using dynkge::core::QuantMode;
using dynkge::core::RowCodec;
using dynkge::util::Rng;

std::vector<float> make_row(std::int32_t width) {
  std::vector<float> row(width);
  Rng rng(7);
  for (auto& v : row) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return row;
}

void BM_Encode(benchmark::State& state) {
  const auto mode = static_cast<QuantMode>(state.range(0));
  const auto width = static_cast<std::int32_t>(state.range(1));
  const RowCodec codec(mode, OneBitScale::kMax, width);
  const auto row = make_row(width);
  Rng rng(1);
  std::vector<std::byte> out;
  for (auto _ : state) {
    out.clear();
    codec.encode(42, row, out, rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          width * sizeof(float));
}
BENCHMARK(BM_Encode)
    ->Args({static_cast<int>(QuantMode::kNone), 64})
    ->Args({static_cast<int>(QuantMode::kOneBit), 64})
    ->Args({static_cast<int>(QuantMode::kTwoBit), 64})
    ->Args({static_cast<int>(QuantMode::kNone), 400})
    ->Args({static_cast<int>(QuantMode::kOneBit), 400})
    ->Args({static_cast<int>(QuantMode::kTwoBit), 400});

void BM_Decode(benchmark::State& state) {
  const auto mode = static_cast<QuantMode>(state.range(0));
  const auto width = static_cast<std::int32_t>(state.range(1));
  const RowCodec codec(mode, OneBitScale::kMax, width);
  const auto row = make_row(width);
  Rng rng(1);
  std::vector<std::byte> wire;
  codec.encode(42, row, wire, rng);
  std::vector<float> decoded(width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(wire, decoded));
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          width * sizeof(float));
}
BENCHMARK(BM_Decode)
    ->Args({static_cast<int>(QuantMode::kNone), 64})
    ->Args({static_cast<int>(QuantMode::kOneBit), 64})
    ->Args({static_cast<int>(QuantMode::kTwoBit), 64})
    ->Args({static_cast<int>(QuantMode::kOneBit), 400});

void BM_EncodeGrad(benchmark::State& state) {
  const auto rows = static_cast<std::int32_t>(state.range(0));
  constexpr std::int32_t kWidth = 64;
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, kWidth);
  dynkge::kge::SparseGrad grad(kWidth);
  Rng rng(3);
  for (std::int32_t r = 0; r < rows; ++r) {
    auto row = grad.accumulate(r * 7);
    for (auto& v : row) v = static_cast<float>(rng.next_double(-1, 1));
  }
  std::vector<std::byte> out;
  Rng enc_rng(1);
  for (auto _ : state) {
    codec.encode_grad(grad, out, enc_rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_EncodeGrad)->Arg(100)->Arg(1000);

}  // namespace

DYNKGE_MICRO_BENCH_MAIN("micro_quantize")
