// Ablation — the two feedback mechanisms the paper's related work cites
// but its final recipe omits:
//
//  * residual accumulation for dropped gradient rows (Aji & Heafield
//    2017) on top of random selection, and
//  * error feedback for quantization (Karimireddy et al. 2019), which is
//    only stable with the *mean* 1-bit scale: the max-scale quantizer the
//    paper picked is not a contraction (decoded magnitudes exceed the
//    inputs), so its residuals grow instead of shrinking.
//
// Reported: convergence and accuracy with each mechanism on and off.
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {2});
  bench::BenchReporter reporter("ablation_feedback", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Ablation: gradient feedback mechanisms",
      "selection residuals recover dropped-row signal; quantization error "
      "feedback requires the mean scale (max is not a contraction)",
      options, dataset);

  struct Variant {
    const char* name;
    const char* key;  ///< metric-name slug for the --bench-json block
    core::StrategyConfig strategy;
  };
  std::vector<Variant> variants;
  {
    core::StrategyConfig s = core::StrategyConfig::rs(options.baseline_negatives);
    variants.push_back({"RS", "rs", s});
    s.selection_residual = true;
    variants.push_back({"RS + selection residuals", "rs_residual", s});
  }
  {
    core::StrategyConfig s =
        core::StrategyConfig::rs_1bit(options.baseline_negatives);
    variants.push_back({"RS+1-bit (max scale)", "onebit_max", s});
    s.error_feedback = true;
    variants.push_back({"RS+1-bit (max) + EF [divergent]", "onebit_max_ef", s});
    s.one_bit_scale = core::OneBitScale::kMean;
    s.error_feedback = false;
    variants.push_back({"RS+1-bit (mean scale)", "onebit_mean", s});
    s.error_feedback = true;
    variants.push_back({"RS+1-bit (mean) + EF", "onebit_mean_ef", s});
  }

  util::Table table({"variant", "N", "final val", "TCA", "MRR"});
  for (const auto& variant : variants) {
    core::TrainConfig config =
        bench::make_config(options, static_cast<int>(options.nodes[0]));
    config.strategy = variant.strategy;
    const auto report = bench::run_experiment(dataset, config);
    table.begin_row()
        .add(variant.name)
        .add(static_cast<std::int64_t>(report.epochs))
        .add(report.final_val_accuracy, 1)
        .add(report.tca, 1)
        .add(report.ranking.mrr, 3);
    const std::string key = variant.key;
    reporter.count(key + ".epochs",
                   static_cast<std::uint64_t>(report.epochs));
    reporter.set(key + ".final_val", report.final_val_accuracy);
    reporter.set(key + ".tca", report.tca);
    reporter.set(key + ".mrr", report.ranking.mrr);
  }
  bench::emit(table, "Feedback mechanism ablation (2 nodes)", options.csv);
  return reporter.write() ? 0 : 1;
}
