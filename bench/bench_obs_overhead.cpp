// Ablation — cost of the observability layer (src/obs/).
//
// The telemetry contract is "near-zero when off, cheap when on": disabled
// sinks cost a few pointer checks per step, enabled sinks only atomics,
// scoped clock reads, and one JSONL line per epoch per rank. This bench
// trains the same fixed configuration with telemetry off and with every
// sink enabled (metrics + trace + events to a temp file), interleaving
// repetitions to cancel thermal/frequency drift, and reports the wall-time
// overhead. Target: enabled < 2% on the fb15k bench scale; losses, epoch
// counts and the trained model stay bit-identical either way (tested in
// test_obs_events.cpp; re-asserted here on the deterministic outputs).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv, "fb15k", {4});
  bench::BenchReporter reporter("obs_overhead", argc, argv);
  reporter.context_from(options);
  const kge::Dataset dataset = bench::make_dataset(options);
  bench::print_banner(
      "Ablation: telemetry overhead (metrics + trace spans + event stream)",
      "observability is free when off and <2% wall overhead when fully on; "
      "results are bit-identical in both modes",
      options, dataset);

  const int ranks = static_cast<int>(options.nodes.back());
  constexpr int kRepetitions = 3;
  const std::string events_path = "/tmp/dynkge_bench_obs_events.jsonl";

  double off_wall = 0.0, on_wall = 0.0;
  int off_epochs = 0, on_epochs = 0;
  double off_loss = 0.0, on_loss = 0.0;
  std::size_t spans = 0, events_written = 0;

  for (int rep = 0; rep < kRepetitions; ++rep) {
    {
      core::TrainConfig config = bench::make_config(options, ranks);
      config.strategy =
          core::StrategyConfig::drs_1bit(options.baseline_negatives);
      const auto report = bench::run_experiment(dataset, config);
      off_wall += report.wall_seconds;
      off_epochs = report.epochs;
      off_loss = report.epoch_log.back().mean_loss;
    }
    {
      obs::MetricsRegistry metrics;
      obs::TraceWriter trace;
      obs::EventLog events(events_path);
      core::TrainConfig config = bench::make_config(options, ranks);
      config.strategy =
          core::StrategyConfig::drs_1bit(options.baseline_negatives);
      config.telemetry.metrics = &metrics;
      config.telemetry.trace = &trace;
      config.telemetry.events = &events;
      const auto report = bench::run_experiment(dataset, config);
      on_wall += report.wall_seconds;
      on_epochs = report.epochs;
      on_loss = report.epoch_log.back().mean_loss;
      spans = trace.size();
      events_written = static_cast<std::size_t>(events.lines_written());
    }
  }
  std::remove(events_path.c_str());

  util::Table table({"telemetry", "wall_s_total", "epochs", "mean_loss_last",
                     "spans", "events"});
  table.begin_row()
      .add("off")
      .add(off_wall, 3)
      .add(static_cast<std::int64_t>(off_epochs))
      .add(off_loss, 6)
      .add(static_cast<std::int64_t>(0))
      .add(static_cast<std::int64_t>(0));
  table.begin_row()
      .add("on (all sinks)")
      .add(on_wall, 3)
      .add(static_cast<std::int64_t>(on_epochs))
      .add(on_loss, 6)
      .add(static_cast<std::int64_t>(spans))
      .add(static_cast<std::int64_t>(events_written));
  bench::emit(table,
              "telemetry off vs fully on, " + std::to_string(kRepetitions) +
                  " interleaved repetitions each",
              options.csv);

  const double overhead = off_wall > 0.0 ? (on_wall / off_wall - 1.0) : 0.0;
  std::printf("\n# telemetry overhead: %+.2f%% wall (target < 2%%)\n",
              overhead * 100.0);
  const bool identical = off_epochs == on_epochs && off_loss == on_loss;
  // The "<2% with all telemetry on" claim, machine-checkable: CI gates
  // overhead_ratio with an absolute ceiling (see tools/check_bench.py).
  reporter.set("overhead_ratio", overhead);
  reporter.flag("outputs_identical", identical);
  reporter.count("epochs", static_cast<std::uint64_t>(on_epochs));
  reporter.count("trace_spans", static_cast<std::uint64_t>(spans));
  reporter.count("events_written",
                 static_cast<std::uint64_t>(events_written));
  const bool wrote = reporter.write();
  if (!identical) {
    std::printf("# ERROR: telemetry changed deterministic outputs "
                "(epochs %d vs %d, loss %.9g vs %.9g)\n",
                off_epochs, on_epochs, off_loss, on_loss);
    return 1;
  }
  std::printf("# deterministic outputs identical with telemetry on\n");
  return wrote ? 0 : 1;
}
