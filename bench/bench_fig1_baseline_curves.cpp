// Figure 1 — the four baseline curves:
//   (a) total training time vs nodes on FB15K
//   (b) total training time vs nodes on FB250K
//   (c) number of epochs vs nodes on FB250K
//   (d) epoch time vs nodes on FB250K
//
// Expected shapes (paper): 1a all-reduce below all-gather everywhere;
// 1b crossover around 4 nodes; 1c epochs rise with nodes for both methods;
// 1d all-gather epoch time overtakes all-reduce as nodes grow.
#include <iostream>

#include "harness/harness.hpp"

using namespace dynkge;

namespace {

void sweep(const bench::HarnessOptions& options, const kge::Dataset& dataset,
           bench::BenchReporter& reporter, const std::string& prefix,
           util::Table& tt, util::Table& epochs, util::Table& epoch_time) {
  for (const std::int64_t nodes : options.nodes) {
    double tt_row[2], n_row[2], et_row[2];
    for (const bool allgather : {false, true}) {
      core::TrainConfig config =
          bench::make_config(options, static_cast<int>(nodes));
      config.strategy =
          allgather
              ? core::StrategyConfig::baseline_allgather(
                    options.baseline_negatives)
              : core::StrategyConfig::baseline_allreduce(
                    options.baseline_negatives);
      const auto report = bench::run_experiment(dataset, config);
      tt_row[allgather] = report.total_sim_seconds;
      n_row[allgather] = report.epochs;
      et_row[allgather] = report.mean_epoch_seconds();
      const std::string key = prefix + ".n" + std::to_string(nodes) + "." +
                              (allgather ? "allgather" : "allreduce");
      reporter.set(key + ".tt_sim_seconds", report.total_sim_seconds);
      reporter.count(key + ".epochs",
                     static_cast<std::uint64_t>(report.epochs));
      reporter.set(key + ".epoch_seconds", report.mean_epoch_seconds());
    }
    tt.begin_row().add(nodes).add(tt_row[0], 3).add(tt_row[1], 3);
    epochs.begin_row()
        .add(nodes)
        .add(static_cast<std::int64_t>(n_row[0]))
        .add(static_cast<std::int64_t>(n_row[1]));
    epoch_time.begin_row().add(nodes).add(et_row[0], 4).add(et_row[1], 4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fig1_baseline_curves", argc, argv);
  // FB15K sweep (figure 1a).
  {
    const auto options =
        bench::parse_options(argc, argv, "fb15k", {1, 2, 4, 8});
    const kge::Dataset dataset = bench::make_dataset(options);
    bench::print_banner(
        "Figure 1a: baseline total training time on FB15K-like",
        "all-reduce is consistently below all-gather on the small dataset",
        options, dataset);
    util::Table tt({"nodes", "allreduce TT(s)", "allgather TT(s)"});
    util::Table epochs({"nodes", "allreduce N", "allgather N"});
    util::Table epoch_time({"nodes", "allreduce s/epoch", "allgather s/epoch"});
    reporter.context_from(options);
    sweep(options, dataset, reporter, "fb15k", tt, epochs, epoch_time);
    bench::emit(tt, "Figure 1a (reproduced): TT on FB15K-like", options.csv);
  }

  // FB250K sweeps (figures 1b, 1c, 1d).
  {
    const auto options =
        bench::parse_options(argc, argv, "fb250k", {1, 2, 4, 8, 16});
    const kge::Dataset dataset = bench::make_dataset(options);
    bench::print_banner(
        "Figure 1b/1c/1d: baseline curves on FB250K-like",
        "TT crossover near 4 nodes; epochs rise with nodes; all-gather "
        "epoch time overtakes all-reduce at high node counts",
        options, dataset);
    util::Table tt({"nodes", "allreduce TT(s)", "allgather TT(s)"});
    util::Table epochs({"nodes", "allreduce N", "allgather N"});
    util::Table epoch_time({"nodes", "allreduce s/epoch", "allgather s/epoch"});
    sweep(options, dataset, reporter, "fb250k", tt, epochs, epoch_time);
    bench::emit(tt, "Figure 1b (reproduced): TT on FB250K-like", options.csv);
    bench::emit(epochs, "Figure 1c (reproduced): epochs on FB250K-like",
                options.csv);
    bench::emit(epoch_time,
                "Figure 1d (reproduced): epoch time on FB250K-like",
                options.csv);
  }
  return reporter.write() ? 0 : 1;
}
