# Empty compiler generated dependencies file for dynkge.
# This may be replaced when dependencies are built.
