file(REMOVE_RECURSE
  "CMakeFiles/dynkge.dir/dynkge_cli.cpp.o"
  "CMakeFiles/dynkge.dir/dynkge_cli.cpp.o.d"
  "dynkge"
  "dynkge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynkge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
