file(REMOVE_RECURSE
  "CMakeFiles/movie_knowledge_base.dir/movie_knowledge_base.cpp.o"
  "CMakeFiles/movie_knowledge_base.dir/movie_knowledge_base.cpp.o.d"
  "movie_knowledge_base"
  "movie_knowledge_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_knowledge_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
