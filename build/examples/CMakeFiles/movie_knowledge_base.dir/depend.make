# Empty dependencies file for movie_knowledge_base.
# This may be replaced when dependencies are built.
