# Empty dependencies file for test_grad_exchange.
# This may be replaced when dependencies are built.
