file(REMOVE_RECURSE
  "CMakeFiles/test_grad_exchange.dir/test_grad_exchange.cpp.o"
  "CMakeFiles/test_grad_exchange.dir/test_grad_exchange.cpp.o.d"
  "test_grad_exchange"
  "test_grad_exchange.pdb"
  "test_grad_exchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grad_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
