# Empty dependencies file for test_relation_partition.
# This may be replaced when dependencies are built.
