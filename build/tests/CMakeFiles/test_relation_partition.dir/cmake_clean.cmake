file(REMOVE_RECURSE
  "CMakeFiles/test_relation_partition.dir/test_relation_partition.cpp.o"
  "CMakeFiles/test_relation_partition.dir/test_relation_partition.cpp.o.d"
  "test_relation_partition"
  "test_relation_partition.pdb"
  "test_relation_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relation_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
