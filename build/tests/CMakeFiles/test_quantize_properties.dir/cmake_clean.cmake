file(REMOVE_RECURSE
  "CMakeFiles/test_quantize_properties.dir/test_quantize_properties.cpp.o"
  "CMakeFiles/test_quantize_properties.dir/test_quantize_properties.cpp.o.d"
  "test_quantize_properties"
  "test_quantize_properties.pdb"
  "test_quantize_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantize_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
