# Empty dependencies file for test_quantize_properties.
# This may be replaced when dependencies are built.
