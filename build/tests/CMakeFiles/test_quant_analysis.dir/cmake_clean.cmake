file(REMOVE_RECURSE
  "CMakeFiles/test_quant_analysis.dir/test_quant_analysis.cpp.o"
  "CMakeFiles/test_quant_analysis.dir/test_quant_analysis.cpp.o.d"
  "test_quant_analysis"
  "test_quant_analysis.pdb"
  "test_quant_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
