# Empty dependencies file for test_quant_analysis.
# This may be replaced when dependencies are built.
