file(REMOVE_RECURSE
  "CMakeFiles/test_communicator.dir/test_communicator.cpp.o"
  "CMakeFiles/test_communicator.dir/test_communicator.cpp.o.d"
  "test_communicator"
  "test_communicator.pdb"
  "test_communicator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_communicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
