# Empty dependencies file for test_strategy_config.
# This may be replaced when dependencies are built.
