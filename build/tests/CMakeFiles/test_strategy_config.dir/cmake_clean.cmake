file(REMOVE_RECURSE
  "CMakeFiles/test_strategy_config.dir/test_strategy_config.cpp.o"
  "CMakeFiles/test_strategy_config.dir/test_strategy_config.cpp.o.d"
  "test_strategy_config"
  "test_strategy_config.pdb"
  "test_strategy_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategy_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
