file(REMOVE_RECURSE
  "CMakeFiles/test_comm_selector.dir/test_comm_selector.cpp.o"
  "CMakeFiles/test_comm_selector.dir/test_comm_selector.cpp.o.d"
  "test_comm_selector"
  "test_comm_selector.pdb"
  "test_comm_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
