file(REMOVE_RECURSE
  "CMakeFiles/test_lr_scheduler.dir/test_lr_scheduler.cpp.o"
  "CMakeFiles/test_lr_scheduler.dir/test_lr_scheduler.cpp.o.d"
  "test_lr_scheduler"
  "test_lr_scheduler.pdb"
  "test_lr_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lr_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
