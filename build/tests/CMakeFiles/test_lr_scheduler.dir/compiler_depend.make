# Empty compiler generated dependencies file for test_lr_scheduler.
# This may be replaced when dependencies are built.
