file(REMOVE_RECURSE
  "CMakeFiles/test_hard_negatives.dir/test_hard_negatives.cpp.o"
  "CMakeFiles/test_hard_negatives.dir/test_hard_negatives.cpp.o.d"
  "test_hard_negatives"
  "test_hard_negatives.pdb"
  "test_hard_negatives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hard_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
