# Empty dependencies file for test_hard_negatives.
# This may be replaced when dependencies are built.
