# Empty dependencies file for test_distributed_eval.
# This may be replaced when dependencies are built.
