file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_eval.dir/test_distributed_eval.cpp.o"
  "CMakeFiles/test_distributed_eval.dir/test_distributed_eval.cpp.o.d"
  "test_distributed_eval"
  "test_distributed_eval.pdb"
  "test_distributed_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
