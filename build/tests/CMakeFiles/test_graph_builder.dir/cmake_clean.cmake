file(REMOVE_RECURSE
  "CMakeFiles/test_graph_builder.dir/test_graph_builder.cpp.o"
  "CMakeFiles/test_graph_builder.dir/test_graph_builder.cpp.o.d"
  "test_graph_builder"
  "test_graph_builder.pdb"
  "test_graph_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
