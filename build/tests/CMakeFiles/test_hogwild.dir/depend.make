# Empty dependencies file for test_hogwild.
# This may be replaced when dependencies are built.
