file(REMOVE_RECURSE
  "CMakeFiles/test_hogwild.dir/test_hogwild.cpp.o"
  "CMakeFiles/test_hogwild.dir/test_hogwild.cpp.o.d"
  "test_hogwild"
  "test_hogwild.pdb"
  "test_hogwild[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hogwild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
