file(REMOVE_RECURSE
  "CMakeFiles/test_grad_select.dir/test_grad_select.cpp.o"
  "CMakeFiles/test_grad_select.dir/test_grad_select.cpp.o.d"
  "test_grad_select"
  "test_grad_select.pdb"
  "test_grad_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grad_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
