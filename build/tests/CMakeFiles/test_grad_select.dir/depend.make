# Empty dependencies file for test_grad_select.
# This may be replaced when dependencies are built.
