file(REMOVE_RECURSE
  "CMakeFiles/test_tsv_loader.dir/test_tsv_loader.cpp.o"
  "CMakeFiles/test_tsv_loader.dir/test_tsv_loader.cpp.o.d"
  "test_tsv_loader"
  "test_tsv_loader.pdb"
  "test_tsv_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsv_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
