# Empty compiler generated dependencies file for test_tsv_loader.
# This may be replaced when dependencies are built.
