file(REMOVE_RECURSE
  "CMakeFiles/test_span_math.dir/test_span_math.cpp.o"
  "CMakeFiles/test_span_math.dir/test_span_math.cpp.o.d"
  "test_span_math"
  "test_span_math.pdb"
  "test_span_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_span_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
