file(REMOVE_RECURSE
  "CMakeFiles/test_comm_fuzz.dir/test_comm_fuzz.cpp.o"
  "CMakeFiles/test_comm_fuzz.dir/test_comm_fuzz.cpp.o.d"
  "test_comm_fuzz"
  "test_comm_fuzz.pdb"
  "test_comm_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
