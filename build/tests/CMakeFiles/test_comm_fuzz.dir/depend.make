# Empty dependencies file for test_comm_fuzz.
# This may be replaced when dependencies are built.
