file(REMOVE_RECURSE
  "../bench/bench_fig4_2bit_random_selection"
  "../bench/bench_fig4_2bit_random_selection.pdb"
  "CMakeFiles/bench_fig4_2bit_random_selection.dir/bench_fig4_2bit_random_selection.cpp.o"
  "CMakeFiles/bench_fig4_2bit_random_selection.dir/bench_fig4_2bit_random_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_2bit_random_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
