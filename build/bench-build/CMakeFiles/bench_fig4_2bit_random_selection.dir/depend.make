# Empty dependencies file for bench_fig4_2bit_random_selection.
# This may be replaced when dependencies are built.
