# Empty dependencies file for bench_table1_baseline_fb15k.
# This may be replaced when dependencies are built.
