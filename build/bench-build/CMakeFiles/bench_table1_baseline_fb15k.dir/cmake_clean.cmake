file(REMOVE_RECURSE
  "../bench/bench_table1_baseline_fb15k"
  "../bench/bench_table1_baseline_fb15k.pdb"
  "CMakeFiles/bench_table1_baseline_fb15k.dir/bench_table1_baseline_fb15k.cpp.o"
  "CMakeFiles/bench_table1_baseline_fb15k.dir/bench_table1_baseline_fb15k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_baseline_fb15k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
