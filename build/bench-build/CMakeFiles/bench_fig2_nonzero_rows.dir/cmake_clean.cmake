file(REMOVE_RECURSE
  "../bench/bench_fig2_nonzero_rows"
  "../bench/bench_fig2_nonzero_rows.pdb"
  "CMakeFiles/bench_fig2_nonzero_rows.dir/bench_fig2_nonzero_rows.cpp.o"
  "CMakeFiles/bench_fig2_nonzero_rows.dir/bench_fig2_nonzero_rows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_nonzero_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
