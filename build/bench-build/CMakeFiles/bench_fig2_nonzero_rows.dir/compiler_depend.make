# Empty compiler generated dependencies file for bench_fig2_nonzero_rows.
# This may be replaced when dependencies are built.
