file(REMOVE_RECURSE
  "../bench/bench_fig8_combined_fb15k"
  "../bench/bench_fig8_combined_fb15k.pdb"
  "CMakeFiles/bench_fig8_combined_fb15k.dir/bench_fig8_combined_fb15k.cpp.o"
  "CMakeFiles/bench_fig8_combined_fb15k.dir/bench_fig8_combined_fb15k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_combined_fb15k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
