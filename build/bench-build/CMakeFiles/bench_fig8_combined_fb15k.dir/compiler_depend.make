# Empty compiler generated dependencies file for bench_fig8_combined_fb15k.
# This may be replaced when dependencies are built.
