# Empty dependencies file for bench_table2_baseline_fb250k.
# This may be replaced when dependencies are built.
