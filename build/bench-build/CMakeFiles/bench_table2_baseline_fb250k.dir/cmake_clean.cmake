file(REMOVE_RECURSE
  "../bench/bench_table2_baseline_fb250k"
  "../bench/bench_table2_baseline_fb250k.pdb"
  "CMakeFiles/bench_table2_baseline_fb250k.dir/bench_table2_baseline_fb250k.cpp.o"
  "CMakeFiles/bench_table2_baseline_fb250k.dir/bench_table2_baseline_fb250k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_baseline_fb250k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
