# Empty dependencies file for bench_fig3_selection_thresholds.
# This may be replaced when dependencies are built.
