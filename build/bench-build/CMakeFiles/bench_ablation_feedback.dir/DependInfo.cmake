
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_feedback.cpp" "bench-build/CMakeFiles/bench_ablation_feedback.dir/bench_ablation_feedback.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_feedback.dir/bench_ablation_feedback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/dynkge_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynkge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kge/CMakeFiles/dynkge_kge.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dynkge_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dynkge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
