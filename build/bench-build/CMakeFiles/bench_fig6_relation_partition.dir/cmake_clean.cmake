file(REMOVE_RECURSE
  "../bench/bench_fig6_relation_partition"
  "../bench/bench_fig6_relation_partition.pdb"
  "CMakeFiles/bench_fig6_relation_partition.dir/bench_fig6_relation_partition.cpp.o"
  "CMakeFiles/bench_fig6_relation_partition.dir/bench_fig6_relation_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_relation_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
