file(REMOVE_RECURSE
  "../bench/bench_table4_fig7_sample_selection"
  "../bench/bench_table4_fig7_sample_selection.pdb"
  "CMakeFiles/bench_table4_fig7_sample_selection.dir/bench_table4_fig7_sample_selection.cpp.o"
  "CMakeFiles/bench_table4_fig7_sample_selection.dir/bench_table4_fig7_sample_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fig7_sample_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
