# Empty dependencies file for bench_table4_fig7_sample_selection.
# This may be replaced when dependencies are built.
