file(REMOVE_RECURSE
  "../bench/bench_fig5_quant_1bit_vs_2bit"
  "../bench/bench_fig5_quant_1bit_vs_2bit.pdb"
  "CMakeFiles/bench_fig5_quant_1bit_vs_2bit.dir/bench_fig5_quant_1bit_vs_2bit.cpp.o"
  "CMakeFiles/bench_fig5_quant_1bit_vs_2bit.dir/bench_fig5_quant_1bit_vs_2bit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_quant_1bit_vs_2bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
