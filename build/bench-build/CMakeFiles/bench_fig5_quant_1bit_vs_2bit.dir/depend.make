# Empty dependencies file for bench_fig5_quant_1bit_vs_2bit.
# This may be replaced when dependencies are built.
