# Empty compiler generated dependencies file for dynkge_bench_harness.
# This may be replaced when dependencies are built.
