file(REMOVE_RECURSE
  "libdynkge_bench_harness.a"
)
