file(REMOVE_RECURSE
  "CMakeFiles/dynkge_bench_harness.dir/harness/harness.cpp.o"
  "CMakeFiles/dynkge_bench_harness.dir/harness/harness.cpp.o.d"
  "libdynkge_bench_harness.a"
  "libdynkge_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynkge_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
