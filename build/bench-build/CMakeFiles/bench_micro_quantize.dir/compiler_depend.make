# Empty compiler generated dependencies file for bench_micro_quantize.
# This may be replaced when dependencies are built.
