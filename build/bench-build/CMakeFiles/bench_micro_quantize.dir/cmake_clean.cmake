file(REMOVE_RECURSE
  "../bench/bench_micro_quantize"
  "../bench/bench_micro_quantize.pdb"
  "CMakeFiles/bench_micro_quantize.dir/bench_micro_quantize.cpp.o"
  "CMakeFiles/bench_micro_quantize.dir/bench_micro_quantize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_quantize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
