# Empty dependencies file for bench_fig9_combined_fb250k.
# This may be replaced when dependencies are built.
