file(REMOVE_RECURSE
  "../bench/bench_fig9_combined_fb250k"
  "../bench/bench_fig9_combined_fb250k.pdb"
  "CMakeFiles/bench_fig9_combined_fb250k.dir/bench_fig9_combined_fb250k.cpp.o"
  "CMakeFiles/bench_fig9_combined_fb250k.dir/bench_fig9_combined_fb250k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_combined_fb250k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
