# Empty dependencies file for bench_ablation_hogwild.
# This may be replaced when dependencies are built.
