file(REMOVE_RECURSE
  "../bench/bench_ablation_hogwild"
  "../bench/bench_ablation_hogwild.pdb"
  "CMakeFiles/bench_ablation_hogwild.dir/bench_ablation_hogwild.cpp.o"
  "CMakeFiles/bench_ablation_hogwild.dir/bench_ablation_hogwild.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hogwild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
