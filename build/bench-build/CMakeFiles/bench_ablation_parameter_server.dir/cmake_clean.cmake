file(REMOVE_RECURSE
  "../bench/bench_ablation_parameter_server"
  "../bench/bench_ablation_parameter_server.pdb"
  "CMakeFiles/bench_ablation_parameter_server.dir/bench_ablation_parameter_server.cpp.o"
  "CMakeFiles/bench_ablation_parameter_server.dir/bench_ablation_parameter_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parameter_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
