# Empty compiler generated dependencies file for bench_ablation_parameter_server.
# This may be replaced when dependencies are built.
