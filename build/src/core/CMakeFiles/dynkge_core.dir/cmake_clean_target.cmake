file(REMOVE_RECURSE
  "libdynkge_core.a"
)
