# Empty compiler generated dependencies file for dynkge_core.
# This may be replaced when dependencies are built.
