file(REMOVE_RECURSE
  "CMakeFiles/dynkge_core.dir/comm_selector.cpp.o"
  "CMakeFiles/dynkge_core.dir/comm_selector.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/distributed_eval.cpp.o"
  "CMakeFiles/dynkge_core.dir/distributed_eval.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/grad_exchange.cpp.o"
  "CMakeFiles/dynkge_core.dir/grad_exchange.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/grad_select.cpp.o"
  "CMakeFiles/dynkge_core.dir/grad_select.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/hard_negatives.cpp.o"
  "CMakeFiles/dynkge_core.dir/hard_negatives.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/hogwild_trainer.cpp.o"
  "CMakeFiles/dynkge_core.dir/hogwild_trainer.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/quant_analysis.cpp.o"
  "CMakeFiles/dynkge_core.dir/quant_analysis.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/quantize.cpp.o"
  "CMakeFiles/dynkge_core.dir/quantize.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/relation_partition.cpp.o"
  "CMakeFiles/dynkge_core.dir/relation_partition.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/report_json.cpp.o"
  "CMakeFiles/dynkge_core.dir/report_json.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/strategy_config.cpp.o"
  "CMakeFiles/dynkge_core.dir/strategy_config.cpp.o.d"
  "CMakeFiles/dynkge_core.dir/trainer.cpp.o"
  "CMakeFiles/dynkge_core.dir/trainer.cpp.o.d"
  "libdynkge_core.a"
  "libdynkge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynkge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
