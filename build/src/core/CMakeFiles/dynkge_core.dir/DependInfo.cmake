
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_selector.cpp" "src/core/CMakeFiles/dynkge_core.dir/comm_selector.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/comm_selector.cpp.o.d"
  "/root/repo/src/core/distributed_eval.cpp" "src/core/CMakeFiles/dynkge_core.dir/distributed_eval.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/distributed_eval.cpp.o.d"
  "/root/repo/src/core/grad_exchange.cpp" "src/core/CMakeFiles/dynkge_core.dir/grad_exchange.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/grad_exchange.cpp.o.d"
  "/root/repo/src/core/grad_select.cpp" "src/core/CMakeFiles/dynkge_core.dir/grad_select.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/grad_select.cpp.o.d"
  "/root/repo/src/core/hard_negatives.cpp" "src/core/CMakeFiles/dynkge_core.dir/hard_negatives.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/hard_negatives.cpp.o.d"
  "/root/repo/src/core/hogwild_trainer.cpp" "src/core/CMakeFiles/dynkge_core.dir/hogwild_trainer.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/hogwild_trainer.cpp.o.d"
  "/root/repo/src/core/quant_analysis.cpp" "src/core/CMakeFiles/dynkge_core.dir/quant_analysis.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/quant_analysis.cpp.o.d"
  "/root/repo/src/core/quantize.cpp" "src/core/CMakeFiles/dynkge_core.dir/quantize.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/quantize.cpp.o.d"
  "/root/repo/src/core/relation_partition.cpp" "src/core/CMakeFiles/dynkge_core.dir/relation_partition.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/relation_partition.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/dynkge_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/report_json.cpp.o.d"
  "/root/repo/src/core/strategy_config.cpp" "src/core/CMakeFiles/dynkge_core.dir/strategy_config.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/strategy_config.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/dynkge_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/dynkge_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kge/CMakeFiles/dynkge_kge.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dynkge_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dynkge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
