file(REMOVE_RECURSE
  "CMakeFiles/dynkge_comm.dir/communicator.cpp.o"
  "CMakeFiles/dynkge_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/dynkge_comm.dir/cost_model.cpp.o"
  "CMakeFiles/dynkge_comm.dir/cost_model.cpp.o.d"
  "libdynkge_comm.a"
  "libdynkge_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynkge_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
