# Empty dependencies file for dynkge_comm.
# This may be replaced when dependencies are built.
