file(REMOVE_RECURSE
  "libdynkge_comm.a"
)
