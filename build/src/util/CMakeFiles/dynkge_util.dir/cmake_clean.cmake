file(REMOVE_RECURSE
  "CMakeFiles/dynkge_util.dir/argparse.cpp.o"
  "CMakeFiles/dynkge_util.dir/argparse.cpp.o.d"
  "CMakeFiles/dynkge_util.dir/logging.cpp.o"
  "CMakeFiles/dynkge_util.dir/logging.cpp.o.d"
  "CMakeFiles/dynkge_util.dir/table.cpp.o"
  "CMakeFiles/dynkge_util.dir/table.cpp.o.d"
  "libdynkge_util.a"
  "libdynkge_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynkge_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
