file(REMOVE_RECURSE
  "libdynkge_util.a"
)
