# Empty dependencies file for dynkge_util.
# This may be replaced when dependencies are built.
