file(REMOVE_RECURSE
  "CMakeFiles/dynkge_kge.dir/adam.cpp.o"
  "CMakeFiles/dynkge_kge.dir/adam.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/complex_model.cpp.o"
  "CMakeFiles/dynkge_kge.dir/complex_model.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/dataset.cpp.o"
  "CMakeFiles/dynkge_kge.dir/dataset.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/distmult_model.cpp.o"
  "CMakeFiles/dynkge_kge.dir/distmult_model.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/evaluator.cpp.o"
  "CMakeFiles/dynkge_kge.dir/evaluator.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/graph_builder.cpp.o"
  "CMakeFiles/dynkge_kge.dir/graph_builder.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/model.cpp.o"
  "CMakeFiles/dynkge_kge.dir/model.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/model_factory.cpp.o"
  "CMakeFiles/dynkge_kge.dir/model_factory.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/negative_sampler.cpp.o"
  "CMakeFiles/dynkge_kge.dir/negative_sampler.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/rotate_model.cpp.o"
  "CMakeFiles/dynkge_kge.dir/rotate_model.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/serialize.cpp.o"
  "CMakeFiles/dynkge_kge.dir/serialize.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/statistics.cpp.o"
  "CMakeFiles/dynkge_kge.dir/statistics.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/synthetic.cpp.o"
  "CMakeFiles/dynkge_kge.dir/synthetic.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/transe_model.cpp.o"
  "CMakeFiles/dynkge_kge.dir/transe_model.cpp.o.d"
  "CMakeFiles/dynkge_kge.dir/tsv_loader.cpp.o"
  "CMakeFiles/dynkge_kge.dir/tsv_loader.cpp.o.d"
  "libdynkge_kge.a"
  "libdynkge_kge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynkge_kge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
