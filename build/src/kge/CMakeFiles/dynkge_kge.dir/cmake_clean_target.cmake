file(REMOVE_RECURSE
  "libdynkge_kge.a"
)
