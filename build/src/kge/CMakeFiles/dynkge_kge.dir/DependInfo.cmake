
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kge/adam.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/adam.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/adam.cpp.o.d"
  "/root/repo/src/kge/complex_model.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/complex_model.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/complex_model.cpp.o.d"
  "/root/repo/src/kge/dataset.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/dataset.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/dataset.cpp.o.d"
  "/root/repo/src/kge/distmult_model.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/distmult_model.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/distmult_model.cpp.o.d"
  "/root/repo/src/kge/evaluator.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/evaluator.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/evaluator.cpp.o.d"
  "/root/repo/src/kge/graph_builder.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/graph_builder.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/graph_builder.cpp.o.d"
  "/root/repo/src/kge/model.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/model.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/model.cpp.o.d"
  "/root/repo/src/kge/model_factory.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/model_factory.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/model_factory.cpp.o.d"
  "/root/repo/src/kge/negative_sampler.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/negative_sampler.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/negative_sampler.cpp.o.d"
  "/root/repo/src/kge/rotate_model.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/rotate_model.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/rotate_model.cpp.o.d"
  "/root/repo/src/kge/serialize.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/serialize.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/serialize.cpp.o.d"
  "/root/repo/src/kge/statistics.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/statistics.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/statistics.cpp.o.d"
  "/root/repo/src/kge/synthetic.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/synthetic.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/synthetic.cpp.o.d"
  "/root/repo/src/kge/transe_model.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/transe_model.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/transe_model.cpp.o.d"
  "/root/repo/src/kge/tsv_loader.cpp" "src/kge/CMakeFiles/dynkge_kge.dir/tsv_loader.cpp.o" "gcc" "src/kge/CMakeFiles/dynkge_kge.dir/tsv_loader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dynkge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
