# Empty dependencies file for dynkge_kge.
# This may be replaced when dependencies are built.
